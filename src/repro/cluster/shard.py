"""One shard process: a warm Searcher plus the block and update routes.

:class:`ShardServer` extends the single-process serving front end
(:class:`~repro.serve.SearchServer` — same framing, coalescer, drain and
error contract) with the two routes the scatter-gather router speaks:

``POST /search_batch``
    ``{"queries": [[...], ...], "k": 5, "options": {...}}`` — answer a
    whole query block in one request.  The block executes on the shard's
    single compute thread exactly as the coalescer's flushes do (one
    ``batch_search``; fast-mode and single-query blocks per query), and
    the response carries the **snapshot version** the block observed, so
    the router can detect a gather that straddled an update.
``POST /update``
    ``{"version": 7, "inserts": [[...], ...], "deletes": [3, 9]}`` —
    apply one update batch atomically.  The version must be exactly one
    past the shard's current version (the router bumps every shard
    uniformly, including shards an update does not touch); running the
    whole batch on the compute thread means no search ever observes a
    half-applied update.  Shards serving a static index reject non-empty
    updates.

:func:`shard_process_main` is the spawn entry point: load the shard's
payload, open a session, serve, and hand the bound port back through a
pipe.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serve.config import ServeConfig
from repro.serve.http import HttpError, json_body
from repro.serve.server import SearchServer


class ShardServer(SearchServer):
    """A :class:`~repro.serve.SearchServer` owning one shard of the data."""

    def __init__(
        self,
        searcher: Any,
        config: Optional[ServeConfig] = None,
        *,
        shard_id: int = 0,
        initial_version: int = 0,
    ) -> None:
        super().__init__(searcher, config)
        self.shard_id = int(shard_id)
        # Snapshot version: read and bumped only on the compute thread, so
        # a /search_batch response's version is exactly the state its
        # results were computed against.
        self._version = int(initial_version)

    def _routes(
        self,
    ) -> Dict[str, Tuple[str, Callable[[bytes], Awaitable[Dict[str, Any]]]]]:
        routes = super()._routes()
        routes["/search_batch"] = ("POST", self._handle_search_batch)
        routes["/update"] = ("POST", self._handle_update)
        return routes

    def _healthz_payload(self) -> Dict[str, Any]:
        payload = super()._healthz_payload()
        payload["role"] = "shard"
        payload["shard_id"] = self.shard_id
        payload["version"] = self._version
        return payload

    # --------------------------------------------------------------- /search_batch

    async def _handle_search_batch(self, body: bytes) -> Dict[str, Any]:
        queries, k, overrides = _parse_batch_payload(json_body(body))

        def run() -> Dict[str, Any]:
            index = self.searcher.index
            live = int(getattr(index, "num_points", 0) or 0)
            if live < 1:
                return {"version": self._version, "results": []}
            # Clamp to the shard's own live count — the same per-shard
            # ``shard_k = min(k, ids.size)`` the in-process partitioned
            # index requests, read under the compute thread so it matches
            # the snapshot the block executes against.
            shard_k = min(k, live)
            if queries.shape[0] == 1 or overrides.get("exact") is False:
                # Fast-mode candidate selection depends on the batch
                # shape, and single rows take the per-query path — the
                # same rule the coalescer's flushes follow.
                rows = [
                    self.searcher.search(row, k=shard_k, **overrides)
                    for row in queries
                ]
            else:
                rows = list(
                    self.searcher.batch_search(
                        queries, k=shard_k, **overrides
                    )
                )
            return {
                "version": self._version,
                "results": [
                    {
                        "indices": [int(i) for i in row.indices],
                        "distances": [float(d) for d in row.distances],
                    }
                    for row in rows
                ],
            }

        try:
            return await self.backend.run_serialized(run)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"{type(exc).__name__}: {exc}")

    # -------------------------------------------------------------------- /update

    async def _handle_update(self, body: bytes) -> Dict[str, Any]:
        version, inserts, deletes = _parse_update_payload(json_body(body))

        def run() -> Dict[str, Any]:
            if version != self._version + 1:
                raise ValueError(
                    f"update version {version} does not follow this shard's "
                    f"version {self._version}; the router bumps versions by "
                    "exactly one"
                )
            index = self.searcher.index
            insert_ids: List[int] = []
            deleted = 0
            if inserts.size or deletes:
                if not callable(getattr(index, "insert", None)):
                    raise ValueError(
                        f"this shard serves a static {type(index).__name__} "
                        "and cannot apply inserts/deletes; build the cluster "
                        "with a 'dynamic' shard spec for routed updates"
                    )
                if inserts.size:
                    insert_ids = [int(i) for i in index.insert(inserts)]
                if deletes:
                    deleted = int(index.delete(deletes))
            self._version = version
            return {
                "version": self._version,
                "insert_ids": insert_ids,
                "deleted": deleted,
            }

        try:
            return await self.backend.run_serialized(run)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"{type(exc).__name__}: {exc}")


def _parse_batch_payload(
    payload: Dict[str, Any],
) -> Tuple[np.ndarray, int, Dict[str, Any]]:
    """Validate one ``POST /search_batch`` body."""
    unknown = set(payload) - {"queries", "k", "options"}
    if unknown:
        raise HttpError(
            400, "unknown request keys: " + ", ".join(sorted(unknown))
        )
    if "queries" not in payload:
        raise HttpError(400, "request must carry a 'queries' matrix")
    try:
        queries = np.asarray(payload["queries"], dtype=np.float64)
    except (TypeError, ValueError):
        raise HttpError(400, "'queries' must be a matrix of numbers")
    if queries.ndim != 2 or queries.shape[0] == 0 or queries.shape[1] == 0:
        raise HttpError(
            400,
            "'queries' must be a non-empty 2-d matrix, got shape "
            f"{queries.shape}",
        )
    if not np.all(np.isfinite(queries)):
        raise HttpError(400, "'queries' must contain only finite numbers")
    k = payload.get("k")
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise HttpError(400, f"'k' must be an integer >= 1, got {k!r}")
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        raise HttpError(
            400, f"'options' must be an object, got {type(options).__name__}"
        )
    return queries, k, dict(options)


def _parse_update_payload(
    payload: Dict[str, Any],
) -> Tuple[int, np.ndarray, List[int]]:
    """Validate one ``POST /update`` body."""
    unknown = set(payload) - {"version", "inserts", "deletes"}
    if unknown:
        raise HttpError(
            400, "unknown request keys: " + ", ".join(sorted(unknown))
        )
    version = payload.get("version")
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise HttpError(
            400, f"'version' must be an integer >= 1, got {version!r}"
        )
    try:
        inserts = np.asarray(payload.get("inserts") or [], dtype=np.float64)
    except (TypeError, ValueError):
        raise HttpError(400, "'inserts' must be a matrix of numbers")
    if inserts.size and inserts.ndim != 2:
        raise HttpError(
            400, f"'inserts' must be a 2-d matrix, got shape {inserts.shape}"
        )
    if inserts.size and not np.all(np.isfinite(inserts)):
        raise HttpError(400, "'inserts' must contain only finite numbers")
    raw_deletes = payload.get("deletes") or []
    if not isinstance(raw_deletes, list):
        raise HttpError(400, "'deletes' must be a list of point ids")
    deletes: List[int] = []
    for item in raw_deletes:
        if isinstance(item, bool) or not isinstance(item, int):
            raise HttpError(
                400, f"'deletes' must hold integers, got {item!r}"
            )
        deletes.append(int(item))
    return version, inserts, deletes


def shard_process_main(
    payload_path: str,
    config: ServeConfig,
    shard_id: int,
    initial_version: int,
    conn: Any,
) -> None:
    """Entry point of one spawned shard process.

    Loads the shard's payload, serves it, and reports either
    ``{"port": n}`` or ``{"error": msg}`` through ``conn`` exactly once.
    SIGTERM/SIGINT trigger the server's ordinary graceful drain.
    """
    from repro.api import Searcher, load_index

    try:
        index = load_index(payload_path)
        searcher = Searcher(index)
    # repro: allow[REP403] process boundary: any load failure must travel
    # back through the pipe as a descriptive message, because the parent
    # cannot see this process's traceback.
    except Exception as exc:
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        return

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        server = ShardServer(
            searcher,
            config,
            shard_id=shard_id,
            initial_version=initial_version,
        )
        try:
            await server.start()
        # repro: allow[REP403] same process boundary as above: a bind
        # failure is reported through the pipe, not a silent exit code.
        except Exception as exc:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            conn.close()
            return
        conn.send({"port": server.port})
        conn.close()
        await stop.wait()
        await server.stop()

    with searcher:
        asyncio.run(main())

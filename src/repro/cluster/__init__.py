"""Distributed scatter-gather serving over sharded indexes.

Section III-A of the paper motivates the Ball-Tree family partly as a
substrate for "scalable and distributed P2HNNS"; the in-process
:class:`~repro.core.partitioned.PartitionedP2HIndex` (one sub-index per
partition, merged top-k) is the single-machine half of that promise.
This package is the other half: the same sharded search, with each shard
owned by its **own server process** behind a scatter-gather router.

* :class:`ClusterSpec` (:mod:`repro.cluster.spec`) — the declarative
  topology: shard count, per-shard index spec, placement strategy,
  ports, and serving knobs; JSON round-trippable like
  :class:`~repro.api.IndexSpec`.
* :mod:`repro.cluster.manifest` — cluster directories on disk: one saved
  payload + global-id map per shard, tied together by ``manifest.json``.
  Built by splitting a partitioned payload
  (:func:`split_partitioned_payload` — keeps its exact placement) or by
  partitioning raw points (:func:`build_cluster_dir`).
* :class:`ShardServer` (:mod:`repro.cluster.shard`) — one warm
  :class:`~repro.api.Searcher` per shard behind the ordinary serving
  front end, extended with the block route (``/search_batch``) and the
  snapshot-versioned update route (``/update``).
* :class:`ScatterGatherBackend` / :class:`RouterServer`
  (:mod:`repro.cluster.router`) — the front door: coalesced flushes
  scatter to every shard concurrently, gathered top-k lists merge with
  the partitioned index's **own** block merge, so routed answers are
  bit-identical to single-process ``batch_search``.  Routed updates bump
  a uniform snapshot version so concurrent queries never observe a
  half-applied batch; a dead shard yields descriptive 503s until
  restarted.
* :class:`ClusterManager` (:mod:`repro.cluster.manager`) — lifecycle:
  spawn/health/drain/restart, process- or thread-backed shards, and the
  ``repro cluster`` CLI's engine room.

The cluster tier is held to the same static contracts as the
single-process front end: ``repro check`` rule REP303 forbids blocking
calls inside this package's coroutines (the counterpart of the serve
tier's REP302).
"""

from repro.cluster.manager import ClusterManager, ProcessShard, ThreadShard
from repro.cluster.manifest import (
    ClusterManifest,
    ShardEntry,
    build_cluster_dir,
    read_manifest,
    split_partitioned_payload,
    write_manifest,
)
from repro.cluster.router import (
    RouterServer,
    ScatterGatherBackend,
    ShardDownError,
    ShardLink,
)
from repro.cluster.shard import ShardServer, shard_process_main
from repro.cluster.spec import ClusterSpec, resolve_cluster_spec

__all__ = [
    "ClusterManager",
    "ClusterManifest",
    "ClusterSpec",
    "ProcessShard",
    "RouterServer",
    "ScatterGatherBackend",
    "ShardDownError",
    "ShardEntry",
    "ShardLink",
    "ShardServer",
    "ThreadShard",
    "build_cluster_dir",
    "read_manifest",
    "resolve_cluster_spec",
    "shard_process_main",
    "split_partitioned_payload",
    "write_manifest",
]

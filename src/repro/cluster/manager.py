"""Cluster lifecycle: spawn shards, run the router, restart the fallen.

:class:`ClusterManager` turns a cluster directory
(:mod:`repro.cluster.manifest`) into a live deployment: one shard server
per manifest entry — a real ``spawn``-ed process
(:class:`ProcessShard`) or, for cheap tests on small machines, a thread
inside this process (:class:`ThreadShard`) — plus the router front end
on its own background thread.  The manager owns health checks, draining,
and :meth:`restart_shard` for crashed shards; while a shard is down the
router answers descriptive 503s naming it, and service resumes as soon
as the restart lands.

A restarted shard serves its **on-disk snapshot**: routed inserts and
deletes applied since the directory was built live only in the shard
processes, so a crash loses them (the restart re-joins at the current
snapshot version, keeping reads consistent).  Durable updates are a
checkpointing concern out of scope here — re-save the shard payloads to
persist a mutated cluster.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from typing import Any, Dict, List, Optional, Union

from os import PathLike

import numpy as np

from repro.cluster.manifest import ClusterManifest, read_manifest
from repro.cluster.router import RouterServer, ScatterGatherBackend, ShardLink
from repro.cluster.shard import ShardServer, shard_process_main
from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.server import BackgroundServer, SearchServer

#: Seconds a spawning shard process gets to report its port.
SPAWN_TIMEOUT_S = 60.0


class ProcessShard:
    """One shard server in its own ``spawn``-ed process."""

    def __init__(
        self,
        payload_path: str,
        config: ServeConfig,
        shard_id: int,
        initial_version: int,
    ) -> None:
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        self.shard_id = int(shard_id)
        self.process = context.Process(
            target=shard_process_main,
            args=(payload_path, config, shard_id, initial_version, child_conn),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_S):
            self.process.kill()
            raise RuntimeError(
                f"shard {shard_id} did not report a port within "
                f"{SPAWN_TIMEOUT_S:g}s"
            )
        message = parent_conn.recv()
        parent_conn.close()
        if "error" in message:
            self.process.join(timeout=10)
            raise RuntimeError(
                f"shard {shard_id} failed to start: {message['error']}"
            )
        self.port = int(message["port"])

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        """Graceful shutdown: SIGTERM triggers the server's drain."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=30)
        if self.process.is_alive():  # pragma: no cover - hung shard
            self.process.kill()
            self.process.join(timeout=10)

    def kill(self) -> None:
        """Hard kill (the failure the degraded-serving tests inject)."""
        self.process.kill()
        self.process.join(timeout=10)


class ThreadShard:
    """One shard server on a thread in this process (for cheap tests).

    Same server class and HTTP surface as :class:`ProcessShard`, without
    process isolation — the shape small-machine tests and the in-repo CI
    smoke use to exercise routing without paying per-process interpreter
    startup.  Owns the shard's index and session lifecycle.
    """

    def __init__(
        self,
        payload_path: str,
        config: ServeConfig,
        shard_id: int,
        initial_version: int,
    ) -> None:
        from repro.api import Searcher, load_index

        self.shard_id = int(shard_id)
        self._searcher = Searcher(load_index(payload_path))

        def factory(searcher: Any, cfg: Optional[ServeConfig]) -> SearchServer:
            return ShardServer(
                searcher,
                cfg,
                shard_id=shard_id,
                initial_version=initial_version,
            )

        self._server = BackgroundServer(
            self._searcher, config, server_factory=factory
        )
        try:
            self._server.__enter__()
        except BaseException:
            self._searcher.close()
            raise
        self.port = int(self._server.port or 0)
        self._stopped = False

    @property
    def alive(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            self._server.__exit__(None, None, None)
        finally:
            if not self._searcher.closed:
                self._searcher.close()

    def kill(self) -> None:
        # No process to kill; stopping the server severs the sockets,
        # which is the failure the router observes either way.
        self.stop()


class ClusterManager:
    """Run one cluster: shard fleet + scatter-gather router.

    Use as a context manager::

        with ClusterManager(cluster_dir) as cluster:
            answer = cluster.search(query, k=5)   # or talk HTTP to
            port = cluster.router_port            # the router directly

    Parameters
    ----------
    manifest:
        A cluster directory path, manifest path, or parsed
        :class:`~repro.cluster.manifest.ClusterManifest`.
    mode:
        ``"process"`` (default) spawns one process per shard;
        ``"thread"`` runs shard servers on threads in this process.
    """

    def __init__(
        self,
        manifest: Union[str, PathLike, ClusterManifest],
        *,
        mode: str = "process",
    ) -> None:
        if mode not in ("process", "thread"):
            raise ValueError(
                f"unknown cluster mode {mode!r}; use 'process' or 'thread'"
            )
        if not isinstance(manifest, ClusterManifest):
            manifest = read_manifest(manifest)
        self.manifest = manifest
        self.spec = manifest.spec
        self.mode = mode
        self.shards: List[Union[ProcessShard, ThreadShard]] = []
        self.backend: Optional[ScatterGatherBackend] = None
        self._router: Optional[BackgroundServer] = None
        self.router_port: Optional[int] = None

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "ClusterManager":
        try:
            self.start()
        except BaseException:
            self.stop()
            raise
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    def start(self) -> None:
        """Spawn every shard, then the router over their live addresses."""
        spec = self.spec
        links: List[ShardLink] = []
        for entry in self.manifest.shards:
            shard = self._spawn_shard(entry.shard_id, initial_version=0)
            self.shards.append(shard)
            links.append(
                ShardLink(
                    entry.shard_id,
                    spec.host,
                    shard.port,
                    entry.load_point_ids(),
                )
            )
        backend = ScatterGatherBackend(links, default_k=spec.default_k)
        self.backend = backend

        def factory(searcher: Any, cfg: Optional[ServeConfig]) -> SearchServer:
            return RouterServer(searcher, cfg, backend=backend)

        self._router = BackgroundServer(
            None, self._router_config(), server_factory=factory
        )
        self._router.__enter__()
        self.router_port = self._router.port

    def stop(self) -> None:
        """Drain the router, then stop every shard."""
        router, self._router = self._router, None
        if router is not None:
            router.__exit__(None, None, None)
        self.router_port = None
        shards, self.shards = self.shards, []
        for shard in shards:
            shard.stop()

    def _shard_config(self, shard_id: int) -> ServeConfig:
        spec = self.spec
        return ServeConfig(
            host=spec.host,
            port=spec.shard_port(shard_id),
            request_timeout_ms=spec.request_timeout_ms,
        )

    def _router_config(self) -> ServeConfig:
        spec = self.spec
        return ServeConfig(
            host=spec.host,
            port=spec.router_port,
            max_batch=spec.max_batch,
            max_wait_ms=spec.max_wait_ms,
            max_queue_depth=spec.max_queue_depth,
            request_timeout_ms=spec.request_timeout_ms,
        )

    def _spawn_shard(
        self, shard_id: int, *, initial_version: int
    ) -> Union[ProcessShard, ThreadShard]:
        entry = self.manifest.shards[shard_id]
        shard_cls = ProcessShard if self.mode == "process" else ThreadShard
        return shard_cls(
            str(entry.payload_path),
            self._shard_config(shard_id),
            shard_id,
            initial_version,
        )

    # ------------------------------------------------------------- operations

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one shard (the degraded-serving failure injection)."""
        self.shards[shard_id].kill()

    def restart_shard(self, shard_id: int) -> None:
        """Replace a dead shard with a fresh one over its on-disk payload.

        The replacement joins at the **current** cluster snapshot version
        (so version-uniformity checks pass immediately) but serves the
        directory's payload: updates routed since the directory was built
        are not replayed — see the module docstring.
        """
        backend = self.backend
        router = self._router
        if backend is None or router is None or router._loop is None:
            raise RuntimeError("the cluster is not running")
        shard = self._spawn_shard(
            shard_id, initial_version=backend.version
        )
        old, self.shards[shard_id] = self.shards[shard_id], shard
        if old.alive:
            old.stop()
        link = backend.links[shard_id]
        # The link is only touched from the router's event loop.
        done = threading.Event()

        def swap() -> None:
            link.set_address(shard.port)
            done.set()

        router._loop.call_soon_threadsafe(swap)
        if not done.wait(timeout=10):  # pragma: no cover - hung loop
            raise RuntimeError("router loop did not acknowledge the restart")

    def health(self) -> Dict[str, Any]:
        """The router's ``/healthz`` payload (a synchronous convenience)."""
        return self._sync_get("/healthz")

    def stats(self) -> Dict[str, Any]:
        """The router's ``/stats`` payload (a synchronous convenience)."""
        return self._sync_get("/stats")

    def search(
        self, query: Any, *, k: Optional[int] = None, **options: Any
    ) -> Dict[str, Any]:
        """One routed query via the router's public ``/search`` route."""

        async def call() -> Dict[str, Any]:
            async with ServeClient(self.spec.host, self._live_port()) as client:
                return await client.search(query, k=k, **options)

        return asyncio.run(call())

    def update(
        self,
        *,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[List[int]] = None,
    ) -> Dict[str, Any]:
        """Route one insert/delete batch via the router's ``/update``."""
        payload: Dict[str, Any] = {
            "inserts": (
                [] if inserts is None
                else np.asarray(inserts, dtype=np.float64).tolist()
            ),
            "deletes": [int(i) for i in (deletes or [])],
        }

        async def call() -> Dict[str, Any]:
            async with ServeClient(self.spec.host, self._live_port()) as client:
                return await client.post("/update", payload)

        return asyncio.run(call())

    def _sync_get(self, path: str) -> Dict[str, Any]:
        async def call() -> Dict[str, Any]:
            async with ServeClient(self.spec.host, self._live_port()) as client:
                return await client.get(path)

        return asyncio.run(call())

    def _live_port(self) -> int:
        if self.router_port is None:
            raise RuntimeError("the cluster is not running")
        return int(self.router_port)

"""Application layers built on the P2HNNS API (the paper's motivating uses)."""

from repro.apps.active_learning import ActiveLearner, LinearModel
from repro.apps.dimension_reduction import LargeMarginReducer, ReductionResult
from repro.apps.margin_clustering import MaxMarginClustering

__all__ = [
    "ActiveLearner",
    "LinearModel",
    "MaxMarginClustering",
    "LargeMarginReducer",
    "ReductionResult",
]

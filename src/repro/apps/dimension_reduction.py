"""Large-margin dimensionality reduction driven by P2HNNS.

The paper's introduction lists three motivating applications; besides active
learning and maximum-margin clustering, the third is *large margin
dimensionality reduction* (Saberian et al., NIPS 2016; Xu et al., ICML
2014): pick a low-dimensional projection such that a linear separator in
the projected space keeps the classes far from the decision hyperplane.

The optimization used here is intentionally simple (the library's
contribution is the search index, not the learner) but it exercises the
P2HNNS API exactly the way the real applications do:

1. draw candidate projection matrices (random orthonormal bases, optionally
   perturbed around the current best),
2. in each candidate's projected space, fit a linear classifier, build a
   P2HNNS index over the projected points, and query it with the decision
   hyperplane — the distance of the first returned neighbor *is* the margin,
3. keep the projection with the largest margin among candidates that keep
   the classifier accurate.

The search index therefore replaces the O(n) margin computation in the inner
loop of the optimizer, which is exactly the speed-up the paper's
applications are after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.apps.active_learning import LinearModel
from repro.core.bc_tree import BCTree
from repro.core.index_base import P2HIndex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_points_matrix, check_positive_int


@dataclass
class ProjectionCandidate:
    """One evaluated projection: basis, margin, and classifier accuracy."""

    basis: np.ndarray
    margin: float
    accuracy: float


@dataclass
class ReductionResult:
    """Outcome of a :class:`LargeMarginReducer` fit."""

    basis: np.ndarray
    margin: float
    accuracy: float
    history: List[ProjectionCandidate] = field(default_factory=list)

    @property
    def target_dim(self) -> int:
        return int(self.basis.shape[1])

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Project points into the learned low-dimensional space."""
        pts = check_points_matrix(points, name="points")
        if pts.shape[1] != self.basis.shape[0]:
            raise ValueError(
                f"points have dimension {pts.shape[1]}, expected {self.basis.shape[0]}"
            )
        return pts @ self.basis


class LargeMarginReducer:
    """Random-search large-margin dimensionality reduction on a P2HNNS index.

    Parameters
    ----------
    target_dim:
        Dimension of the projected space.
    num_candidates:
        Number of candidate projections evaluated (the first is always an
        unperturbed random orthonormal basis; later ones are perturbations of
        the best basis found so far).
    perturbation:
        Relative magnitude of the Gaussian perturbation applied when refining
        the current best basis.
    min_accuracy:
        Candidates whose classifier accuracy falls below this threshold are
        rejected regardless of margin (margin alone can be gamed by
        projecting every point onto the hyperplane's far side).
    index_factory:
        Factory for the P2HNNS index used to compute margins
        (default: ``BCTree()``).
    random_state:
        Seed or generator.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.apps.dimension_reduction import LargeMarginReducer
    >>> rng = np.random.default_rng(0)
    >>> points = np.vstack([rng.normal(-2, 1, size=(60, 10)),
    ...                     rng.normal(+2, 1, size=(60, 10))])
    >>> labels = np.array([-1] * 60 + [+1] * 60)
    >>> reducer = LargeMarginReducer(target_dim=2, num_candidates=4, random_state=0)
    >>> result = reducer.fit(points, labels)
    >>> result.transform(points).shape
    (120, 2)
    """

    def __init__(
        self,
        target_dim: int,
        *,
        num_candidates: int = 8,
        perturbation: float = 0.3,
        min_accuracy: float = 0.75,
        index_factory: Optional[Callable[[], P2HIndex]] = None,
        random_state=None,
    ) -> None:
        self.target_dim = check_positive_int(target_dim, name="target_dim")
        self.num_candidates = check_positive_int(num_candidates, name="num_candidates")
        if perturbation <= 0.0:
            raise ValueError(f"perturbation must be positive, got {perturbation}")
        if not 0.0 <= min_accuracy <= 1.0:
            raise ValueError(f"min_accuracy must be in [0, 1], got {min_accuracy}")
        self.perturbation = float(perturbation)
        self.min_accuracy = float(min_accuracy)
        self.index_factory = index_factory or (lambda: BCTree())
        self.random_state = random_state

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray, labels: np.ndarray) -> ReductionResult:
        """Learn a projection maximizing the margin of a linear separator."""
        pts = check_points_matrix(points, name="points")
        labels = np.asarray(labels, dtype=np.float64)
        if labels.shape[0] != pts.shape[0]:
            raise ValueError("labels must have one entry per point")
        if self.target_dim >= pts.shape[1]:
            raise ValueError(
                f"target_dim must be smaller than the input dimension "
                f"({self.target_dim} >= {pts.shape[1]})"
            )
        rng = ensure_rng(self.random_state)

        history: List[ProjectionCandidate] = []
        best: Optional[ProjectionCandidate] = None
        for candidate_index in range(self.num_candidates):
            basis = self._propose_basis(pts.shape[1], rng, best)
            candidate = self._evaluate(pts, labels, basis)
            history.append(candidate)
            if candidate.accuracy < self.min_accuracy:
                continue
            if best is None or candidate.margin > best.margin:
                best = candidate
        if best is None:
            # No candidate met the accuracy bar; fall back to the most
            # accurate one so the caller still gets a usable projection.
            best = max(history, key=lambda c: (c.accuracy, c.margin))
        return ReductionResult(
            basis=best.basis,
            margin=best.margin,
            accuracy=best.accuracy,
            history=history,
        )

    # ------------------------------------------------------------ internals

    def _propose_basis(
        self,
        input_dim: int,
        rng: np.random.Generator,
        best: Optional[ProjectionCandidate],
    ) -> np.ndarray:
        raw = rng.normal(size=(input_dim, self.target_dim))
        if best is not None:
            raw = best.basis + self.perturbation * raw
        # Orthonormalize so projected distances are comparable across
        # candidates (QR of a full-column-rank Gaussian matrix).
        basis, _ = np.linalg.qr(raw)
        return basis[:, : self.target_dim]

    def _evaluate(
        self, points: np.ndarray, labels: np.ndarray, basis: np.ndarray
    ) -> ProjectionCandidate:
        projected = points @ basis
        model = LinearModel().fit(projected, labels)
        accuracy = model.accuracy(projected, labels)
        index = self.index_factory().fit(projected)
        result = index.search(model.decision_hyperplane(), k=1)
        margin = float(result.distances[0]) if len(result) else 0.0
        return ProjectionCandidate(basis=basis, margin=margin, accuracy=accuracy)

"""Pool-based active learning with a linear classifier and P2HNNS.

The paper's first motivating application (Section I): when training an SVM
with a human annotator in the loop, each round should request labels for the
pool points *closest to the current decision hyperplane* (minimum margin),
because those are the points the classifier is least certain about.  Finding
them is exactly a P2HNNS query with the decision hyperplane as the query.

This module provides a small, dependency-free active-learning loop:

* :class:`LinearModel` — a regularized least-squares linear classifier
  (a stand-in for a linear SVM; it produces the same kind of decision
  hyperplane ``{p : <w, p> + b = 0}``).
* :class:`ActiveLearner` — the uncertainty-sampling loop: fit the model on
  the labelled pool, query the P2HNNS index for the unlabelled points
  nearest the hyperplane, acquire their labels, repeat.

The loop accepts any index implementing the :class:`~repro.core.index_base.P2HIndex`
interface, so BC-Tree, Ball-Tree, the hashing baselines, and the linear scan
are interchangeable — which is how the active-learning example compares
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.bc_tree import BCTree
from repro.core.index_base import P2HIndex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_points_matrix, check_positive_int


@dataclass
class LinearModel:
    """Regularized least-squares linear classifier.

    Solves ``min_w ||A w - y||^2 + reg ||w||^2`` where ``A`` is the labelled
    data with an appended bias column and ``y in {-1, +1}``.  The decision
    hyperplane ``{p : <w[:-1], p> + w[-1] = 0}`` is exposed in the query
    layout the P2HNNS indexes expect.
    """

    regularization: float = 1e-3
    weights: Optional[np.ndarray] = None

    def fit(self, points: np.ndarray, labels: np.ndarray) -> "LinearModel":
        """Fit the classifier on labelled points."""
        pts = check_points_matrix(points, name="points")
        labels = np.asarray(labels, dtype=np.float64)
        if labels.shape[0] != pts.shape[0]:
            raise ValueError("labels must have one entry per point")
        design = np.hstack([pts, np.ones((pts.shape[0], 1))])
        gram = design.T @ design + self.regularization * np.eye(design.shape[1])
        self.weights = np.linalg.solve(gram, design.T @ labels)
        return self

    def decision_hyperplane(self) -> np.ndarray:
        """The decision hyperplane as a P2HNNS query vector (normal; offset)."""
        if self.weights is None:
            raise RuntimeError("LinearModel must be fitted first")
        return self.weights.copy()

    def decision_function(self, points: np.ndarray) -> np.ndarray:
        """Signed distance-like score ``<w, p> + b`` for each point."""
        if self.weights is None:
            raise RuntimeError("LinearModel must be fitted first")
        pts = check_points_matrix(points, name="points")
        return pts @ self.weights[:-1] + self.weights[-1]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Predicted labels in ``{-1, +1}``."""
        scores = self.decision_function(points)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def accuracy(self, points: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on labelled points."""
        labels = np.asarray(labels, dtype=np.float64)
        return float(np.mean(self.predict(points) == np.sign(labels)))


@dataclass
class ActiveLearningRound:
    """Bookkeeping for one round of the active-learning loop."""

    round_index: int
    queried_indices: List[int]
    labelled_count: int
    accuracy: Optional[float]
    query_seconds: float


class ActiveLearner:
    """Uncertainty-sampling active learning driven by a P2HNNS index.

    Parameters
    ----------
    index_factory:
        Zero-argument callable returning a fresh (unfitted) P2H index; the
        index is rebuilt over the *unlabelled pool* at each round (the pool
        shrinks as labels are acquired).  Defaults to a BC-Tree.
    batch_size:
        Number of labels requested per round (the k of the P2HNNS query).
    model:
        The linear classifier to retrain each round.
    random_state:
        Seed controlling the initial labelled points.
    """

    def __init__(
        self,
        *,
        index_factory: Optional[Callable[[], P2HIndex]] = None,
        batch_size: int = 10,
        model: Optional[LinearModel] = None,
        random_state=None,
    ) -> None:
        self.index_factory = index_factory or (lambda: BCTree(leaf_size=64))
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.model = model or LinearModel()
        self.random_state = random_state
        self.history: List[ActiveLearningRound] = []

    def run(
        self,
        pool_points: np.ndarray,
        oracle: Callable[[Sequence[int]], np.ndarray],
        *,
        num_rounds: int = 10,
        initial_labels: int = 10,
        holdout_points: Optional[np.ndarray] = None,
        holdout_labels: Optional[np.ndarray] = None,
    ) -> LinearModel:
        """Run the active-learning loop.

        Parameters
        ----------
        pool_points:
            The unlabelled pool, shape ``(n, d-1)``.
        oracle:
            Callable mapping pool indices to their true labels (simulates the
            human annotator).
        num_rounds:
            Number of query rounds after the initial random sample.
        initial_labels:
            Number of randomly selected seed labels.
        holdout_points, holdout_labels:
            Optional held-out set for accuracy tracking per round.

        Returns
        -------
        LinearModel
            The classifier after the final round.
        """
        import time

        pool = check_points_matrix(pool_points, name="pool_points")
        rng = ensure_rng(self.random_state)
        num_rounds = check_positive_int(num_rounds, name="num_rounds")
        initial_labels = check_positive_int(initial_labels, name="initial_labels")

        n = pool.shape[0]
        labelled_mask = np.zeros(n, dtype=bool)
        seed_indices = rng.choice(n, size=min(initial_labels, n), replace=False)
        labelled_mask[seed_indices] = True
        labels = np.zeros(n, dtype=np.float64)
        labels[seed_indices] = oracle(seed_indices)

        self.history = []
        for round_index in range(num_rounds):
            labelled_idx = np.flatnonzero(labelled_mask)
            self.model.fit(pool[labelled_idx], labels[labelled_idx])
            unlabelled_idx = np.flatnonzero(~labelled_mask)
            if unlabelled_idx.size == 0:
                break

            hyperplane = self.model.decision_hyperplane()
            index = self.index_factory()
            tic = time.perf_counter()
            index.fit(pool[unlabelled_idx])
            k = min(self.batch_size, unlabelled_idx.size)
            result = index.search(hyperplane, k=k)
            query_seconds = time.perf_counter() - tic

            chosen = unlabelled_idx[result.indices]
            labels[chosen] = oracle(chosen)
            labelled_mask[chosen] = True

            accuracy = None
            if holdout_points is not None and holdout_labels is not None:
                accuracy = self.model.accuracy(holdout_points, holdout_labels)
            self.history.append(
                ActiveLearningRound(
                    round_index=round_index,
                    queried_indices=[int(i) for i in chosen],
                    labelled_count=int(labelled_mask.sum()),
                    accuracy=accuracy,
                    query_seconds=query_seconds,
                )
            )

        labelled_idx = np.flatnonzero(labelled_mask)
        self.model.fit(pool[labelled_idx], labels[labelled_idx])
        return self.model

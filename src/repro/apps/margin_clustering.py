"""Maximum-margin clustering driven by P2HNNS queries.

The paper's second motivating application (Section I): maximum margin
clustering looks for the hyperplane that separates the data into two groups
while *maximizing the minimum margin* — i.e. maximizing the distance of the
closest point to the hyperplane.  Evaluating a candidate hyperplane's
minimum margin is exactly a k=1 P2HNNS query, so a simple stochastic search
over candidate hyperplanes can use any index in this library to score
candidates quickly.

This module implements that loop: candidate hyperplanes are proposed from
pairs of cluster centroids (plus random perturbations), each candidate's
minimum margin is measured with a P2HNNS query, and the best candidate is
iteratively refined.  The algorithm is intentionally simple — it is an
application of the index, not a state-of-the-art clustering method — but it
produces sensible two-cluster splits on separated data and demonstrates the
"many hyperplane queries against one fixed data set" workload where index
construction cost is amortized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.bc_tree import BCTree
from repro.core.index_base import P2HIndex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_points_matrix, check_positive_int


@dataclass
class ClusteringResult:
    """Outcome of the maximum-margin clustering search."""

    hyperplane: np.ndarray
    labels: np.ndarray
    margin: float
    margins_per_iteration: List[float]

    @property
    def balance(self) -> float:
        """Fraction of points on the positive side (0.5 = perfectly balanced)."""
        return float(np.mean(self.labels > 0))


class MaxMarginClustering:
    """Two-way maximum-margin clustering via stochastic hyperplane search.

    Parameters
    ----------
    index_factory:
        Zero-argument callable returning a fresh P2H index used to score the
        minimum margin of candidate hyperplanes (default: BC-Tree).
    num_candidates:
        Number of candidate hyperplanes evaluated per iteration.
    num_iterations:
        Number of refinement iterations.
    balance_tolerance:
        Candidates putting fewer than this fraction of points on either side
        are rejected (prevents the degenerate "all points on one side"
        solution, mirroring the balance constraint of maximum margin
        clustering formulations).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        *,
        index_factory: Optional[Callable[[], P2HIndex]] = None,
        num_candidates: int = 20,
        num_iterations: int = 5,
        balance_tolerance: float = 0.2,
        random_state=None,
    ) -> None:
        self.index_factory = index_factory or (lambda: BCTree(leaf_size=64))
        self.num_candidates = check_positive_int(num_candidates, name="num_candidates")
        self.num_iterations = check_positive_int(num_iterations, name="num_iterations")
        if not 0.0 <= balance_tolerance < 0.5:
            raise ValueError(
                f"balance_tolerance must be in [0, 0.5), got {balance_tolerance}"
            )
        self.balance_tolerance = float(balance_tolerance)
        self.random_state = random_state

    def fit(self, points: np.ndarray) -> ClusteringResult:
        """Search for a large-margin separating hyperplane over ``points``."""
        pts = check_points_matrix(points, name="points", min_rows=2)
        rng = ensure_rng(self.random_state)
        n, dim = pts.shape

        index = self.index_factory()
        index.fit(pts)

        data_scale = float(np.mean(np.linalg.norm(pts - pts.mean(axis=0), axis=1)))
        best_hyperplane = None
        best_margin = -np.inf
        margins_per_iteration: List[float] = []

        # Initial candidate: the perpendicular bisector of two distant points
        # (a hyperplane that crosses the data's widest extent).
        anchor = pts[rng.integers(0, n)]
        distances = np.linalg.norm(pts - anchor, axis=1)
        partner = pts[int(np.argmax(distances))]
        base_normal = partner - anchor
        base_normal = base_normal / max(float(np.linalg.norm(base_normal)), 1e-12)
        base_offset = -float(base_normal @ ((partner + anchor) / 2.0))

        for iteration in range(self.num_iterations):
            # Shrink the proposal neighbourhood each iteration.  Direction
            # noise is relative to the unit normal; offset noise is relative
            # to the data scale.
            direction_scale = 0.8 * (0.5 ** iteration) / np.sqrt(dim)
            offset_scale = 0.3 * data_scale * (0.5 ** iteration)
            for _ in range(self.num_candidates):
                normal = base_normal + rng.normal(scale=direction_scale, size=dim)
                norm = float(np.linalg.norm(normal))
                if norm < 1e-12:
                    continue
                normal = normal / norm
                offset = base_offset + float(rng.normal(scale=offset_scale))
                hyperplane = np.concatenate([normal, [offset]])

                sides = pts @ normal + offset
                positive_fraction = float(np.mean(sides > 0))
                if not (
                    self.balance_tolerance
                    <= positive_fraction
                    <= 1.0 - self.balance_tolerance
                ):
                    continue

                result = index.search(hyperplane, k=1)
                margin = float(result.distances[0]) if len(result) else 0.0
                if margin > best_margin:
                    best_margin = margin
                    best_hyperplane = hyperplane
                    base_normal = normal.copy()
                    base_offset = offset
            margins_per_iteration.append(
                best_margin if np.isfinite(best_margin) else 0.0
            )

        if best_hyperplane is None:
            # No balanced candidate found (tiny or degenerate data): fall back
            # to the initial bisector so callers always get a valid result.
            best_hyperplane = np.concatenate([base_normal, [base_offset]])
            best_margin = float(
                index.search(best_hyperplane, k=1).distances[0]
            )

        labels = np.where(
            pts @ best_hyperplane[:-1] + best_hyperplane[-1] > 0, 1, -1
        )
        return ClusteringResult(
            hyperplane=best_hyperplane,
            labels=labels,
            margin=best_margin,
            margins_per_iteration=margins_per_iteration,
        )

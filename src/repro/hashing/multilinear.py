"""Bilinear (BH) and multilinear (MH) hyperplane hashing (related work).

Section VI of the paper traces the lineage of hyperplane hashing: AH and EH
(Jain et al., NIPS 2010) were improved by BH (Liu et al., ICML 2012) and MH
(Liu et al., CVPR 2016), which use *products* of sign projections to amplify
the gap in collision probability between points close to the hyperplane and
points far from it.  Like AH/EH these schemes assume (near) unit-norm data;
they are provided so the library covers every baseline family the paper
mentions and so the "degrades on unnormalized data" claim can be reproduced.

* **BH** — each hash function draws two directions ``u, v`` and emits the
  single bit ``sign(<u, x>) * sign(<v, x>)``; the query's normal is hashed
  with the *negated* product, so points whose angle to the normal is close
  to 90° collide with the query more often.
* **MH** — the multilinear generalization: the bit is the product of
  ``2t`` sign projections (``t`` pairs), which sharpens the collision
  probability gap further at the cost of more projections per function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import SearchStats
from repro.hashing.base import HashingIndex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


class MultilinearHyperplaneHash(HashingIndex):
    """BH / MH hyperplane hashing for (near) unit-norm data.

    Parameters
    ----------
    scheme:
        ``"bh"`` (bilinear, default) or ``"mh"`` (multilinear with
        ``order`` pairs of projections per hash function).
    order:
        Number of projection pairs per hash function for MH (ignored for
        BH, which always uses one pair).
    num_tables:
        Number of hash tables ``m``.
    bits_per_table:
        Number of concatenated product-bits per table ``K``.
    random_state:
        Seed or generator.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing.multilinear import MultilinearHyperplaneHash
    >>> rng = np.random.default_rng(5)
    >>> data = rng.normal(size=(400, 16))
    >>> data /= np.linalg.norm(data, axis=1, keepdims=True)
    >>> index = MultilinearHyperplaneHash("bh", random_state=5).fit(data)
    >>> result = index.search(rng.normal(size=17), k=5)
    >>> result.distances.shape[0] <= 5
    True
    """

    def __init__(
        self,
        scheme: str = "bh",
        *,
        order: int = 2,
        num_tables: int = 16,
        bits_per_table: int = 8,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(augment=augment, normalize_queries=normalize_queries)
        scheme = str(scheme).lower()
        if scheme not in ("bh", "mh"):
            raise ValueError(f"scheme must be 'bh' or 'mh', got {scheme!r}")
        self.scheme = scheme
        self.order = 1 if scheme == "bh" else check_positive_int(order, name="order")
        self.num_tables = check_positive_int(num_tables, name="num_tables")
        self.bits_per_table = check_positive_int(bits_per_table, name="bits_per_table")
        self.random_state = random_state
        # Buckets are keyed by the byte representation of the table's code
        # bits (cheap to derive from a row of the code matrix in both the
        # build and the batched query path).
        self._tables: List[Dict[bytes, np.ndarray]] = []
        self._directions_u: Optional[np.ndarray] = None
        self._directions_v: Optional[np.ndarray] = None
        self._hash_dim: int = 0

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        # Like AH/EH, BH/MH hash the original coordinates against the
        # hyperplane's normal vector; the appended-1 coordinate and the
        # offset only participate in candidate verification.
        self._hash_dim = self.dim - 1
        normalized = self._unit_rows(points[:, : self._hash_dim])
        total_funcs = self.num_tables * self.bits_per_table
        # Each hash function uses ``order`` (u, v) pairs.
        shape = (total_funcs, self.order, self._hash_dim)
        self._directions_u = rng.normal(size=shape)
        self._directions_v = rng.normal(size=shape)

        codes = self._point_codes(normalized)
        self._tables = self._build_byte_buckets(codes, self._key_columns())

    def _key_columns(self) -> List[slice]:
        """Each table's key bits: a contiguous block of the code matrix."""
        return [
            slice(table * self.bits_per_table,
                  (table + 1) * self.bits_per_table)
            for table in range(self.num_tables)
        ]

    def _point_codes(self, unit_points: np.ndarray) -> np.ndarray:
        """Product-of-signs code matrix ``(n, total_funcs)`` for data points."""
        signs_u = np.sign(np.einsum("nd,fod->nfo", unit_points, self._directions_u))
        signs_v = np.sign(np.einsum("nd,fod->nfo", unit_points, self._directions_v))
        signs_u[signs_u == 0.0] = 1.0
        signs_v[signs_v == 0.0] = 1.0
        products = np.prod(signs_u * signs_v, axis=2)
        return products >= 0.0

    def _query_codes(self, query: np.ndarray) -> np.ndarray:
        """Product-of-signs code vector for the hyperplane's normal (negated)."""
        normal = query[: self._hash_dim]
        unit_query = normal / max(float(np.linalg.norm(normal)), 1e-300)
        signs_u = np.sign(self._directions_u @ unit_query)
        signs_v = np.sign(self._directions_v @ unit_query)
        signs_u[signs_u == 0.0] = 1.0
        signs_v[signs_v == 0.0] = 1.0
        products = -np.prod(signs_u * signs_v, axis=1)
        return products >= 0.0

    @staticmethod
    def _unit_rows(points: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(points, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return points / norms

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        arrays: List[np.ndarray] = []
        for table in self._tables:
            arrays.extend(table.values())
        for arr in (self._directions_u, self._directions_v):
            if arr is not None:
                arrays.append(arr)
        return arrays

    # ---------------------------------------------------------------- search

    def _candidates_batch(
        self, matrix: np.ndarray, **kwargs
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(
                f"MultilinearHyperplaneHash.search got unexpected options: {unexpected}"
            )
        return self._probe_byte_buckets(matrix, self._key_columns())

"""Classic hyperplane hashing for unit-norm data (related-work extension).

Before NH/FH, hyperplane hashing assumed every data point lies on the unit
hypersphere and hashed the *angle* between data points and the query's
normal vector (Section VI: AH and EH by Jain et al., plus their multilinear
descendants BH/MH).  We provide the two foundational schemes as an optional
extension so the library covers the full lineage the paper discusses:

* **AH** (angle hyperplane hash): a data point is hashed with two random
  directions ``(sign(u . x), sign(v . x))`` while the query's normal is
  hashed with ``(sign(u . q), -sign(v . q))``; points nearly perpendicular
  to the normal collide with higher probability.
* **EH** (embedding hyperplane hash): both data and query are lifted to the
  rank-one outer product ``z z^T`` and hashed with a single random sign
  projection in that space (queries negated).

Both schemes only behave as advertised for (approximately) unit-norm data —
exactly the limitation that motivates NH/FH and this paper.  The index
normalizes its inputs and emits no error for unnormalized data, but recall
degrades, which is the behaviour the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import SearchStats
from repro.hashing.base import HashingIndex
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


class AngularHyperplaneHash(HashingIndex):
    """AH / EH hyperplane hashing for (near) unit-norm data.

    Parameters
    ----------
    scheme:
        ``"ah"`` (two-vector angle hash, default) or ``"eh"`` (embedding
        hash on the outer-product lift).
    num_tables:
        Number of hash tables ``m``.
    bits_per_table:
        Number of concatenated sign bits per table ``K``.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        scheme: str = "ah",
        *,
        num_tables: int = 16,
        bits_per_table: int = 8,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(augment=augment, normalize_queries=normalize_queries)
        scheme = str(scheme).lower()
        if scheme not in ("ah", "eh"):
            raise ValueError(f"scheme must be 'ah' or 'eh', got {scheme!r}")
        self.scheme = scheme
        self.num_tables = check_positive_int(num_tables, name="num_tables")
        self.bits_per_table = check_positive_int(bits_per_table, name="bits_per_table")
        self.random_state = random_state
        # Buckets are keyed by the byte representation of the table's code
        # bits (cheap to derive in both the build and batched query paths).
        self._tables: List[Dict[bytes, np.ndarray]] = []
        self._directions_u: Optional[np.ndarray] = None
        self._directions_v: Optional[np.ndarray] = None
        self._eh_planes: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        # AH/EH hash the original point against the hyperplane's *normal*
        # vector (they predate the dimension-appending trick and assume
        # hyperplanes through the origin), so the hash operates on the first
        # d-1 coordinates; the appended-1 coordinate and the query offset
        # only participate in candidate verification.
        self._hash_dim = self.dim - 1
        normalized = self._unit_rows(points[:, : self._hash_dim])
        total_funcs = self.num_tables * self.bits_per_table

        if self.scheme == "ah":
            # AH: each hash function contributes the bit pair
            # (sign(u . x), sign(v . x)); queries negate the v component.
            self._directions_u = rng.normal(size=(total_funcs, self._hash_dim))
            self._directions_v = rng.normal(size=(total_funcs, self._hash_dim))
            bits_u = (normalized @ self._directions_u.T) >= 0.0
            bits_v = (normalized @ self._directions_v.T) >= 0.0
            codes = np.concatenate([bits_u, bits_v], axis=1)
        else:
            self._eh_planes = rng.normal(size=(total_funcs, self._hash_dim, self._hash_dim))
            flattened = self._eh_planes.reshape(total_funcs, -1)
            outer = np.einsum("ni,nj->nij", normalized, normalized).reshape(
                normalized.shape[0], -1
            )
            codes = (outer @ flattened.T) >= 0.0

        self._tables = self._build_byte_buckets(codes, self._key_columns())

    def _key_columns(self) -> List[np.ndarray]:
        """Each table's key bits (u- and v-blocks for AH; see below)."""
        return [
            self._table_columns(table) for table in range(self.num_tables)
        ]

    def _table_columns(self, table: int) -> np.ndarray:
        """Column indices of ``table``'s bits in the full code matrix.

        For AH the code matrix is ``[u-bits | v-bits]``, so a table's key is
        its ``bits_per_table`` u-bits followed by the matching v-bits; for EH
        it is a contiguous block of single bits.
        """
        start = table * self.bits_per_table
        block = np.arange(start, start + self.bits_per_table)
        if self.scheme == "ah":
            total_funcs = self.num_tables * self.bits_per_table
            return np.concatenate([block, block + total_funcs])
        return block

    @staticmethod
    def _unit_rows(points: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(points, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return points / norms

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        arrays: List[np.ndarray] = []
        for table in self._tables:
            arrays.extend(table.values())
        for arr in (self._directions_u, self._directions_v, self._eh_planes):
            if arr is not None:
                arrays.append(arr)
        return arrays

    # ---------------------------------------------------------------- search

    def _query_codes(self, query: np.ndarray) -> np.ndarray:
        normal = query[: self._hash_dim]
        unit_query = normal / max(float(np.linalg.norm(normal)), 1e-300)
        total_funcs = self.num_tables * self.bits_per_table
        if self.scheme == "ah":
            bits_u = (self._directions_u @ unit_query) >= 0.0
            bits_v = (self._directions_v @ unit_query) < 0.0  # query negates v
            return np.concatenate([bits_u, bits_v])
        outer = np.outer(unit_query, unit_query).reshape(-1)
        flattened = self._eh_planes.reshape(total_funcs, -1)
        return (flattened @ (-outer)) >= 0.0

    def _candidates_batch(
        self, matrix: np.ndarray, **kwargs
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(
                f"AngularHyperplaneHash.search got unexpected options: {unexpected}"
            )
        return self._probe_byte_buckets(matrix, self._key_columns())

"""Shared batched-execution machinery for the hashing baselines.

Every hashing index (NH, FH, and the AH/EH/BH/MH related-work schemes)
answers a query in two phases: *candidate generation* (probe hash tables)
and *verification* (exact ``|<x, q>|`` on the candidate union).  This module
factors the phases into one vectorized whole-batch kernel so the hashing
side of the paper's comparison runs through the same engine fast path the
tree indexes and the linear scan got:

* :meth:`HashingIndex._batch_kernel` is the engine entry point
  (:func:`repro.engine.batch.execute_batch` dispatches it instead of
  pooling per-query ``_search_one`` calls): it normalizes the whole query
  block, generates candidates for bounded sub-blocks of queries at once
  (subclass hook :meth:`HashingIndex._candidates_batch`), and verifies
  each query's candidates with the per-query gather + vectorized top-k
  selection in :meth:`HashingIndex._verify_block`.
* The sequential ``_search_one`` of every hashing index delegates to the
  same kernel with a block of one query, so ``search`` and ``batch_search``
  run literally the same code — the engine's bit-identical-results contract
  holds by construction, for any batch chunking.

Verification reduces each query's deduplicated candidate block with the
same ``points[ids] @ query`` GEMV kernel the per-query path uses, followed
by one vectorized top-k partition instead of per-candidate heap pushes —
the distances are bit-identical to per-query verification by construction
(same gather, same kernel, same inputs).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.index_base import P2HIndex
from repro.core.results import SearchResult, SearchStats
from repro.utils.validation import check_positive_int


def unique_id_rows(candidates: np.ndarray) -> List[np.ndarray]:
    """Per-row sorted distinct ids of an equal-width candidate matrix.

    Equivalent to ``[np.unique(row) for row in candidates]`` but performs
    one whole-batch row sort instead of a Python-level hash dedupe per
    query — the single hottest step of the hashing kernels.  Sorting and
    the first-occurrence mask are per-row independent, so the output is
    identical no matter how a batch is chunked.
    """
    num_queries, width = candidates.shape
    if width == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(num_queries)]
    ordered = np.sort(candidates, axis=1)
    fresh = np.empty(ordered.shape, dtype=bool)
    fresh[:, 0] = True
    fresh[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    return [row[mask] for row, mask in zip(ordered, fresh)]


#: Upper bound on queries per internal kernel sub-block.  The probe kernels
#: materialize O(tables * probes) of dense intermediates per query;
#: sub-blocking bounds kernel memory independently of the batch size (the
#: per-row independence of every step makes the split invisible in the
#: results).  Indexes whose probe width varies (NH/FH) shrink the block
#: further via :meth:`HashingIndex._kernel_block_queries` so the bound also
#: holds under large ``probes_per_table`` overrides.
KERNEL_BLOCK_QUERIES = 1024

#: Target size (in array elements) of one probe-kernel intermediate; the
#: per-block query count is derived from it (~32 MB of float64 per array).
KERNEL_TARGET_ELEMENTS = 4_000_000


class HashingIndex(P2HIndex):
    """Base class for hashing indexes with a vectorized whole-batch kernel.

    Subclasses implement :meth:`_candidates_batch`; candidate verification,
    top-k collection, engine dispatch, and the sequential/batched code
    unification live here.
    """

    # ------------------------------------------------------------- overrides

    def _candidates_batch(
        self, matrix: np.ndarray, **kwargs
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        """Candidate ids and probe counters for every normalized query row.

        Returns one deduplicated (``np.unique``-sorted) id array and one
        :class:`SearchStats` (with ``buckets_probed`` filled in) per query.
        Implementations must keep every step per-row independent so results
        do not depend on how the engine chunks a batch.
        """
        raise NotImplementedError

    # ---------------------------------------------------------------- kernel

    def _batch_kernel(
        self, queries: np.ndarray, k: int, **kwargs
    ) -> List[SearchResult]:
        """Answer a whole query block; the engine's vectorized entry point.

        ``queries`` is a chunk of the 2-D matrix ``execute_batch`` already
        promoted and finiteness-checked; only dimension checking and
        per-row normalization remain (see ``_prepare_query_matrix``).
        """
        wall_tic = time.perf_counter()
        matrix = self._prepare_query_matrix(queries)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        block = max(1, min(KERNEL_BLOCK_QUERIES,
                           self._kernel_block_queries(**kwargs)))
        results: List[SearchResult] = []
        for start in range(0, matrix.shape[0], block):
            sub = matrix[start: start + block]
            candidate_lists, stats_list = self._candidates_batch(
                sub, **kwargs
            )
            results.extend(
                self._verify_block(sub, candidate_lists, k, stats_list)
            )
        wall = time.perf_counter() - wall_tic
        if results:
            # The block kernel answers all queries together; attribute the
            # wall time evenly so per-query timings stay meaningful.
            share = wall / len(results)
            for result in results:
                result.stats.elapsed_seconds = share
        return results

    def _verify_block(
        self,
        matrix: np.ndarray,
        candidate_lists: Sequence[np.ndarray],
        k: int,
        stats_list: Sequence[SearchStats],
    ) -> List[SearchResult]:
        """Verify every query's candidate block against the data matrix.

        Each query's candidates are gathered and reduced with the same
        ``points[ids] @ query`` GEMV the per-query path always used, so
        distances are bit-identical to sequential verification.  (A single
        whole-batch gather was measured slower at every dimension: copying
        all candidate rows into one out-of-cache buffer costs more memory
        bandwidth than per-query gathers that stay L2-resident, 4x slower
        at d=513.)  Top-k selection is a vectorized partition +
        lexicographic ``(distance, id)`` sort — the same ordering
        :class:`~repro.core.results.TopKCollector` produces, without its
        per-candidate heap pushes.
        """
        results: List[SearchResult] = []
        for row, (ids, stats) in enumerate(zip(candidate_lists, stats_list)):
            length = int(ids.shape[0])
            if not length:
                results.append(
                    SearchResult(
                        indices=np.empty(0, dtype=np.int64),
                        distances=np.empty(0, dtype=np.float64),
                        stats=stats,
                    )
                )
                continue
            distances = np.abs(self._points[ids] @ matrix[row])
            stats.candidates_verified += length
            if k < length:
                top = np.argpartition(distances, k - 1)[:k]
            else:
                top = np.arange(length)
            order = top[np.lexsort((ids[top], distances[top]))]
            results.append(
                SearchResult(
                    indices=ids[order],
                    distances=distances[order],
                    stats=stats,
                )
            )
        return results

    def _kernel_block_queries(self, **kwargs) -> int:
        """Queries per kernel sub-block; subclasses scale by probe width."""
        return KERNEL_BLOCK_QUERIES

    def _resolve_probe_options(self, probes_per_table, num_tables):
        """Resolve the query-time probe overrides for projection-table
        indexes (NH/FH): defaults from the constructor, validation via
        ``check_positive_int``, and the built table count as the ceiling.
        The one resolution both the memory sub-blocking and the candidate
        generation use, so they can never disagree."""
        probes = (
            self.probes_per_table
            if probes_per_table is None
            else check_positive_int(probes_per_table, name="probes_per_table")
        )
        tables = (
            self.num_tables
            if num_tables is None
            else min(
                check_positive_int(num_tables, name="num_tables"),
                self.num_tables,
            )
        )
        return probes, tables

    # ------------------------------------------------------- bucket helpers

    def _build_byte_buckets(
        self, codes: np.ndarray, columns_per_table: Sequence
    ) -> List[Dict[bytes, np.ndarray]]:
        """Group rows of a bool code matrix into per-table byte-keyed buckets.

        ``columns_per_table`` selects each table's key bits (a slice or an
        index array); the byte representation of those bits is the bucket
        key, cheap to derive in both the build and batched query paths.
        Shared by the AH/EH and BH/MH bucket indexes.
        """
        tables: List[Dict[bytes, np.ndarray]] = []
        for columns in columns_per_table:
            chunk = np.ascontiguousarray(codes[:, columns])
            buckets: Dict[bytes, List[int]] = defaultdict(list)
            for row in range(chunk.shape[0]):
                buckets[chunk[row].tobytes()].append(row)
            tables.append(
                {
                    key: np.asarray(value, dtype=np.int64)
                    for key, value in buckets.items()
                }
            )
        return tables

    def _probe_byte_buckets(
        self, matrix: np.ndarray, columns_per_table: Sequence
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        """Candidate generation for byte-keyed bucket tables.

        Codes are computed per row with the subclass's ``_query_codes`` —
        the same sign kernel the single-query path always used (a
        whole-block GEMM is not bit-reproducible against it; see
        :mod:`repro.engine.batch`) — then every table is probed with cheap
        byte-key lookups.
        """
        candidate_lists: List[np.ndarray] = []
        stats_list: List[SearchStats] = []
        for row in range(matrix.shape[0]):
            codes = self._query_codes(matrix[row])
            buckets = []
            for table, columns in zip(self._tables, columns_per_table):
                bucket = table.get(
                    np.ascontiguousarray(codes[columns]).tobytes()
                )
                if bucket is not None:
                    buckets.append(bucket)
            if buckets:
                candidate_lists.append(np.unique(np.concatenate(buckets)))
            else:
                candidate_lists.append(np.empty(0, dtype=np.int64))
            stats_list.append(SearchStats(buckets_probed=self.num_tables))
        return candidate_lists, stats_list

    def __setstate__(self, state):
        """Migrate bucket tables pickled with the old tuple-of-bits keys.

        Earlier releases keyed ``_tables`` by tuples of ints; loading such
        a pickle into the byte-key probe would silently miss every bucket
        and return empty results, so convert the keys on load.
        """
        self.__dict__.update(state)
        tables = self.__dict__.get("_tables")
        if isinstance(tables, list):
            self._tables = [
                {
                    (
                        np.asarray(key, dtype=bool).tobytes()
                        if isinstance(key, tuple)
                        else key
                    ): value
                    for key, value in table.items()
                }
                if isinstance(table, dict)
                else table
                for table in tables
            ]

    # ------------------------------------------------------------ sequential

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """One query through the same candidate + blocked-verify code path."""
        matrix = query[None, :]
        candidate_lists, stats_list = self._candidates_batch(matrix, **kwargs)
        return self._verify_block(matrix, candidate_lists, k, stats_list)[0]

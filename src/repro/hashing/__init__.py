"""Hashing-based P2HNNS baselines: NH, FH, and the classic hyperplane hashes.

These reimplement the two state-of-the-art baselines the paper compares
against (NH and FH from Huang et al., SIGMOD 2021) together with the
asymmetric tensor-lift transformation they rely on, plus the older
angle-based hyperplane hashing schemes (AH/EH and their bilinear /
multilinear descendants BH/MH) that only work for unit-norm data
(Section VI related work).
"""

from repro.hashing.angular import AngularHyperplaneHash
from repro.hashing.fh import FHIndex
from repro.hashing.multilinear import MultilinearHyperplaneHash
from repro.hashing.nh import NHIndex
from repro.hashing.transform import (
    SampledLift,
    TensorLift,
    lift_dimension,
)

__all__ = [
    "NHIndex",
    "FHIndex",
    "AngularHyperplaneHash",
    "MultilinearHyperplaneHash",
    "TensorLift",
    "SampledLift",
    "lift_dimension",
]

"""Hashing-based P2HNNS baselines: NH, FH, and the classic hyperplane hashes.

These reimplement the two state-of-the-art baselines the paper compares
against (NH and FH from Huang et al., SIGMOD 2021) together with the
asymmetric tensor-lift transformation they rely on, plus the older
angle-based hyperplane hashing schemes (AH/EH and their bilinear /
multilinear descendants BH/MH) that only work for unit-norm data
(Section VI related work).

All four index families share the whole-batch kernel in
:mod:`repro.hashing.base`, so their ``batch_search`` is answered in
chunked block calls by the execution engine (bit-identical to sequential
``search``) instead of a per-query worker-pool loop.  NH/FH probe their
projection tables with fully batched array kernels; the bucket-based
AH/EH/BH/MH schemes run the same kernel protocol but keep hash-code
computation, bucket lookups, and verification per row (their sign kernels
must match the sequential path bit for bit) — for them the batch path
strips per-query dispatch overhead rather than vectorizing the probe.
"""

from repro.hashing.angular import AngularHyperplaneHash
from repro.hashing.base import HashingIndex
from repro.hashing.fh import FHIndex
from repro.hashing.multilinear import MultilinearHyperplaneHash
from repro.hashing.nh import NHIndex
from repro.hashing.transform import (
    SampledLift,
    TensorLift,
    lift_dimension,
)

__all__ = [
    "NHIndex",
    "FHIndex",
    "HashingIndex",
    "AngularHyperplaneHash",
    "MultilinearHyperplaneHash",
    "TensorLift",
    "SampledLift",
    "lift_dimension",
]

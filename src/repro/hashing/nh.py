"""NH — Nearest-Hyperplane hashing baseline (Huang et al., SIGMOD 2021).

NH converts P2HNNS into a Euclidean nearest neighbor search:

1. lift data and queries with the symmetric tensor lift (or its randomized
   sampling approximation with ``sample_dim = lambda`` coordinates);
2. pad every lifted data point so all transformed points share the same norm
   ``M`` and negate the lifted query (:func:`repro.hashing.transform.nh_pad`
   / :func:`~repro.hashing.transform.nh_query`), after which the Euclidean
   distance between transformed data and query is a monotone increasing
   function of ``<x, q>^2``;
3. answer the Euclidean NNS with query-aware projection tables
   (:class:`~repro.hashing.projections.ProjectionTables`), probing each
   table around the query's projection and verifying the union of candidates
   with the exact P2H distance.

The two costs the paper attributes to NH fall out of this construction:
indexing pays the Omega(d^2) (or lambda-sampled) lift for every point and
stores ``num_tables`` full projection tables, and queries suffer the
distortion introduced by the additive ``M^2`` constant.

Batched queries run through the vectorized hashing kernel
(:class:`repro.hashing.base.HashingIndex`): the whole block is lifted and
transformed at once, probed with the batch projection-table kernels,
deduplicated in one row sort, and verified per query — bit-identical to
per-query ``search``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import SearchStats
from repro.hashing.base import (
    KERNEL_TARGET_ELEMENTS,
    HashingIndex,
    unique_id_rows,
)
from repro.hashing.projections import ProjectionTables
from repro.hashing.transform import make_lift, nh_pad, nh_query
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int


class NHIndex(HashingIndex):
    """Nearest-Hyperplane hashing index.

    Parameters
    ----------
    num_tables:
        Number of projection tables ``m`` (paper grid: 8..256; default 32).
    sample_dim:
        ``lambda`` — number of sampled lift coordinates.  ``None`` uses the
        exact d(d+1)/2-dimensional lift (expensive; the paper's default is
        the sampled version with ``lambda in {d, ..., 8d}``).
    probes_per_table:
        Default number of candidates probed per table at query time; can be
        overridden per query to trade recall for time.
    random_state:
        Seed or generator.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing import NHIndex
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(300, 10))
    >>> query = rng.normal(size=11)
    >>> index = NHIndex(num_tables=8, sample_dim=22, random_state=0).fit(data)
    >>> result = index.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        num_tables: int = 32,
        *,
        sample_dim: Optional[int] = None,
        probes_per_table: int = 32,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(augment=augment, normalize_queries=normalize_queries)
        self.num_tables = check_positive_int(num_tables, name="num_tables")
        self.sample_dim = (
            None
            if sample_dim is None
            else check_positive_int(sample_dim, name="sample_dim")
        )
        self.probes_per_table = check_positive_int(
            probes_per_table, name="probes_per_table"
        )
        self.random_state = random_state
        self._lift = None
        self._tables: Optional[ProjectionTables] = None
        self._max_lift_norm: float = 0.0

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        self._lift = make_lift(self.dim, self.sample_dim, rng=spawn_rng(rng))
        lifted = self._lift.transform(points)
        padded, self._max_lift_norm = nh_pad(lifted)
        self._tables = ProjectionTables(self.num_tables, rng=spawn_rng(rng))
        self._tables.fit(padded)

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        if self._tables is None:
            return ()
        return tuple(self._tables.payload_arrays())

    # ---------------------------------------------------------------- search

    def _kernel_block_queries(
        self,
        *,
        probes_per_table: Optional[int] = None,
        num_tables: Optional[int] = None,
        **kwargs,
    ) -> int:
        probes, tables = self._resolve_probe_options(
            probes_per_table, num_tables
        )
        cap = min(2 * probes, max(1, self.num_points))
        return max(1, KERNEL_TARGET_ELEMENTS // (tables * cap))

    def _candidates_batch(
        self,
        matrix: np.ndarray,
        *,
        probes_per_table: Optional[int] = None,
        num_tables: Optional[int] = None,
        **kwargs,
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"NHIndex.search got unexpected options: {unexpected}")
        probes, tables_to_use = self._resolve_probe_options(
            probes_per_table, num_tables
        )

        # Lift + NH transform are element-wise per row: one call covers the
        # whole block.  Projections are restricted to the tables actually
        # probed, so a query-time ``num_tables`` override never pays for
        # unused tables.
        transformed = nh_query(self._lift.transform(matrix))
        query_projections = self._tables.project_queries(
            transformed, num_tables=tables_to_use
        )
        probed = self._tables.probe_nearest_batch(query_projections, probes)

        candidate_lists = unique_id_rows(probed.reshape(matrix.shape[0], -1))
        stats_list = [
            SearchStats(buckets_probed=tables_to_use)
            for _ in range(matrix.shape[0])
        ]
        return candidate_lists, stats_list

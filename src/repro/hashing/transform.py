"""Asymmetric tensor-lift transformations used by the NH and FH baselines.

NH and FH (Huang et al., SIGMOD 2021) convert P2HNNS into a classic
Euclidean nearest / furthest neighbor search by lifting both data and
queries into a space of dimension Omega(d^2) where the inner product of the
lifted vectors equals the *squared* original inner product:

    <f(x), f(q)> = <x, q>^2.

We implement the lift with the symmetric "upper-triangular" embedding

    f(x) = ( x_i^2 for i ) ++ ( sqrt(2) x_i x_j for i < j )

whose dimension is d(d+1)/2 (:func:`lift_dimension`), which satisfies the
identity exactly.  On top of the lift:

* **NH** pads every lifted data point with ``sqrt(M^2 - ||f(x)||^2)`` (where
  ``M = max_x ||f(x)||``) and negates the lifted query, so all transformed
  data points share the same norm ``M`` and the Euclidean distance between
  transformed data and query is ``M^2 + ||f(q)||^2 + 2 <x, q>^2`` — a
  monotone function of the P2H distance, solvable by Euclidean NNS.  The
  additive constant ``M^2`` is exactly the "large constant" distortion the
  paper criticizes.
* **FH** keeps the lifted data unpadded and partitions it by lifted norm;
  within a partition (roughly constant ``||f(x)||``) the transformed
  Euclidean distance is monotone *decreasing* in ``<x, q>^2``, so the
  problem becomes a furthest neighbor search.

Because the full lift is quadratic in ``d`` (and therefore expensive in both
time and memory — the very overhead Table III measures), both schemes
support the *randomized sampling* approximation suggested in the paper:
only ``lambda`` coordinates of the lift are used, rescaled so the inner
product is preserved in expectation (:class:`SampledLift`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import ensure_rng


def lift_dimension(dim: int) -> int:
    """Dimension ``d(d+1)/2`` of the full symmetric tensor lift."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return dim * (dim + 1) // 2


class TensorLift:
    """Exact symmetric tensor lift ``f: R^d -> R^{d(d+1)/2}``.

    The lift satisfies ``<f(x), f(y)> = <x, y>^2`` exactly.

    Parameters
    ----------
    dim:
        The original (augmented) dimension ``d``.
    """

    def __init__(self, dim: int) -> None:
        self.dim = int(dim)
        self.output_dim = lift_dimension(self.dim)
        # Index pairs (i, j) with i <= j and the matching scale factors.
        rows, cols = np.triu_indices(self.dim)
        self._rows = rows
        self._cols = cols
        self._scales = np.where(rows == cols, 1.0, np.sqrt(2.0))

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Lift one vector (``(d,)``) or a batch (``(n, d)``)."""
        arr = np.asarray(points, dtype=np.float64)
        single = arr.ndim == 1
        arr = np.atleast_2d(arr)
        if arr.shape[1] != self.dim:
            raise ValueError(
                f"expected dimension {self.dim}, got {arr.shape[1]}"
            )
        lifted = arr[:, self._rows] * arr[:, self._cols] * self._scales
        return lifted[0] if single else lifted


class SampledLift:
    """Randomized-sampling approximation of the tensor lift.

    ``num_samples`` coordinate pairs ``(i, j)`` are drawn uniformly (with
    replacement) from the ``d x d`` product grid; the lifted vector is

        f_S(x)_s = sqrt(d^2 / num_samples) * x_{i_s} * x_{j_s}

    so that ``E[<f_S(x), f_S(y)>] = <x, y>^2``.  This reduces the lift
    dimension from Omega(d^2) to ``lambda = num_samples`` at the cost of an
    additive estimation error — the trade-off the paper describes for NH and
    FH with ``lambda in {d, 2d, 4d, 8d}``.

    Parameters
    ----------
    dim:
        Original (augmented) dimension ``d``.
    num_samples:
        Number of sampled coordinates ``lambda``.
    rng:
        Seed or generator for the coordinate draw.
    """

    def __init__(self, dim: int, num_samples: int, *, rng=None) -> None:
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        self.dim = int(dim)
        self.output_dim = int(num_samples)
        generator = ensure_rng(rng)
        self._rows = generator.integers(0, self.dim, size=self.output_dim)
        self._cols = generator.integers(0, self.dim, size=self.output_dim)
        self._scale = self.dim / np.sqrt(self.output_dim)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Approximately lift one vector or a batch of vectors."""
        arr = np.asarray(points, dtype=np.float64)
        single = arr.ndim == 1
        arr = np.atleast_2d(arr)
        if arr.shape[1] != self.dim:
            raise ValueError(
                f"expected dimension {self.dim}, got {arr.shape[1]}"
            )
        lifted = arr[:, self._rows] * arr[:, self._cols] * self._scale
        return lifted[0] if single else lifted


def make_lift(dim: int, sample_dim: Optional[int], rng=None):
    """Build the exact lift (``sample_dim=None``) or a sampled lift."""
    if sample_dim is None:
        return TensorLift(dim)
    return SampledLift(dim, sample_dim, rng=rng)


def nh_pad(lifted_points: np.ndarray) -> Tuple[np.ndarray, float]:
    """NH data padding: append ``sqrt(M^2 - ||f(x)||^2)`` to every row.

    Returns the padded matrix and ``M`` (the maximum lifted norm), which the
    query transform needs for bookkeeping.  All padded rows have norm ``M``.

    Raises
    ------
    ValueError
        If the lifted matrix is empty — a silent ``M = 0`` would build an
        index whose every padded coordinate is meaningless.
    """
    lifted_points = np.atleast_2d(np.asarray(lifted_points, dtype=np.float64))
    if lifted_points.shape[0] == 0 or lifted_points.shape[1] == 0:
        raise ValueError(
            "nh_pad requires a non-empty lifted matrix, got shape "
            f"{lifted_points.shape}"
        )
    sq_norms = np.einsum("ij,ij->i", lifted_points, lifted_points)
    max_sq = float(sq_norms.max())
    pad = np.sqrt(np.maximum(max_sq - sq_norms, 0.0))
    padded = np.hstack([lifted_points, pad[:, None]])
    return padded, float(np.sqrt(max_sq))


def nh_query(lifted_query: np.ndarray) -> np.ndarray:
    """NH query transform: negate the lifted query and append a zero.

    Accepts one lifted query (``(L,)``) or a block (``(q, L)``); the block
    form is element-wise per row, so a batched transform is bit-identical to
    transforming each row alone.
    """
    lifted_query = np.asarray(lifted_query, dtype=np.float64)
    if lifted_query.ndim == 1:
        return np.concatenate([-lifted_query, [0.0]])
    return np.hstack(
        [-lifted_query, np.zeros((lifted_query.shape[0], 1), dtype=np.float64)]
    )

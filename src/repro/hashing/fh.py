"""FH — Furthest-Hyperplane hashing baseline (Huang et al., SIGMOD 2021).

FH also uses the tensor lift, but instead of padding data to a common norm
it partitions the lifted data by norm (the ``separation threshold l``
parameter controls how many partitions are built).  Within one partition the
lifted norms are roughly constant, so the Euclidean distance in the lifted
space is monotone *decreasing* in ``<x, q>^2`` and the point closest to the
hyperplane is the *furthest* transformed neighbor of the transformed query.
Each partition is therefore indexed with reverse query-aware projection
tables (:meth:`~repro.hashing.projections.ProjectionTables.probe_furthest`).

The extra partition bookkeeping is why FH's index is larger than NH's for
the same ``lambda`` in Table III, and the per-partition probing is why FH
spends more time on "table lookup" in the Figure 10 profile.

Batched queries run through the vectorized hashing kernel
(:class:`repro.hashing.base.HashingIndex`): the block is lifted once, each
partition is probed with the batch reverse-probing kernel, and the merged
candidates are deduplicated in one row sort and verified per query —
bit-identical to per-query ``search``.  A query-time ``num_tables`` override restricts both projection
and probing to the requested tables in every partition, so
``stats.buckets_probed`` counts tables actually probed (the same meaning NH
reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import SearchStats
from repro.hashing.base import (
    KERNEL_TARGET_ELEMENTS,
    HashingIndex,
    unique_id_rows,
)
from repro.hashing.projections import ProjectionTables
from repro.hashing.transform import make_lift
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int


@dataclass
class _Partition:
    """One norm partition of the lifted data."""

    point_ids: np.ndarray
    tables: ProjectionTables
    min_norm: float
    max_norm: float


class FHIndex(HashingIndex):
    """Furthest-Hyperplane hashing index.

    Parameters
    ----------
    num_tables:
        Number of projection tables per partition (``m``; default 32).
    num_partitions:
        Number of norm partitions (the paper's separation threshold
        ``l in {2, 4, 6}``; default 4).
    sample_dim:
        ``lambda`` — number of sampled lift coordinates (``None`` = exact
        lift).
    probes_per_table:
        Default candidates probed per table per partition.
    random_state:
        Seed or generator.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hashing import FHIndex
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(300, 10))
    >>> query = rng.normal(size=11)
    >>> index = FHIndex(num_tables=8, sample_dim=22, random_state=0).fit(data)
    >>> result = index.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        num_tables: int = 32,
        *,
        num_partitions: int = 4,
        sample_dim: Optional[int] = None,
        probes_per_table: int = 32,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(augment=augment, normalize_queries=normalize_queries)
        self.num_tables = check_positive_int(num_tables, name="num_tables")
        self.num_partitions = check_positive_int(num_partitions, name="num_partitions")
        self.sample_dim = (
            None
            if sample_dim is None
            else check_positive_int(sample_dim, name="sample_dim")
        )
        self.probes_per_table = check_positive_int(
            probes_per_table, name="probes_per_table"
        )
        self.random_state = random_state
        self._lift = None
        self._partitions: List[_Partition] = []

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        self._lift = make_lift(self.dim, self.sample_dim, rng=spawn_rng(rng))
        lifted = self._lift.transform(points)
        norms = np.linalg.norm(lifted, axis=1)

        # Partition by lifted norm using quantile cut points so partitions
        # have balanced sizes even for heavy-tailed norm distributions.
        num_partitions = min(self.num_partitions, max(1, self.num_points))
        quantiles = np.linspace(0.0, 1.0, num_partitions + 1)[1:-1]
        cuts = np.quantile(norms, quantiles) if quantiles.size else np.empty(0)
        labels = np.searchsorted(cuts, norms, side="right")

        self._partitions = []
        for label in range(num_partitions):
            member_ids = np.flatnonzero(labels == label)
            if member_ids.size == 0:
                continue
            tables = ProjectionTables(self.num_tables, rng=spawn_rng(rng))
            tables.fit(lifted[member_ids], point_ids=member_ids)
            self._partitions.append(
                _Partition(
                    point_ids=member_ids.astype(np.int64),
                    tables=tables,
                    min_norm=float(norms[member_ids].min()),
                    max_norm=float(norms[member_ids].max()),
                )
            )

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        arrays: List[np.ndarray] = []
        for partition in self._partitions:
            arrays.append(partition.point_ids)
            arrays.extend(partition.tables.payload_arrays())
        return arrays

    @property
    def partition_sizes(self) -> List[int]:
        """Number of points in each non-empty norm partition."""
        self._check_fitted()
        return [int(p.point_ids.shape[0]) for p in self._partitions]

    # ---------------------------------------------------------------- search

    def _kernel_block_queries(
        self,
        *,
        probes_per_table: Optional[int] = None,
        num_tables: Optional[int] = None,
        **kwargs,
    ) -> int:
        probes, tables = self._resolve_probe_options(
            probes_per_table, num_tables
        )
        cap = min(2 * probes, max(1, self.num_points))
        # Every partition contributes its own probe intermediates and
        # candidate columns to the block.
        partitions = max(1, len(self._partitions))
        return max(1, KERNEL_TARGET_ELEMENTS // (tables * cap * partitions))

    def _candidates_batch(
        self,
        matrix: np.ndarray,
        *,
        probes_per_table: Optional[int] = None,
        num_tables: Optional[int] = None,
        **kwargs,
    ) -> Tuple[List[np.ndarray], List[SearchStats]]:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"FHIndex.search got unexpected options: {unexpected}")
        probes, tables_to_use = self._resolve_probe_options(
            probes_per_table, num_tables
        )

        # One element-wise lift covers the block; every partition then
        # projects the block only onto the tables actually probed (the
        # ``num_tables`` override no longer pays for unused tables) and runs
        # the batch reverse-probing kernel.
        lifted = self._lift.transform(matrix)
        num_queries = matrix.shape[0]
        blocks: List[np.ndarray] = []
        for partition in self._partitions:
            query_projections = partition.tables.project_queries(
                lifted, num_tables=tables_to_use
            )
            probed = partition.tables.probe_furthest_batch(
                query_projections, probes
            )
            blocks.append(probed.reshape(num_queries, -1))

        if blocks:
            candidate_lists = unique_id_rows(np.concatenate(blocks, axis=1))
        else:
            candidate_lists = [
                np.empty(0, dtype=np.int64) for _ in range(num_queries)
            ]
        buckets = tables_to_use * len(self._partitions)
        stats_list = [
            SearchStats(buckets_probed=buckets) for _ in range(num_queries)
        ]
        return candidate_lists, stats_list

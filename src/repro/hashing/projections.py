"""Query-aware projection tables — the LSH substrate for NH and FH.

Both NH and FH in the original implementation are built on query-aware LSH
(QALSH for the nearest-neighbor variant, RQALSH for the furthest-neighbor
variant): every hash table is a single random projection line; the data's
projections are kept sorted, and at query time the table is probed around
(or away from) the query's projection.

This module provides that substrate:

* :class:`ProjectionTables` stores ``num_tables`` random unit directions and
  the per-table sorted data projections.
* :meth:`ProjectionTables.probe_nearest_batch` returns, for a whole batch of
  queries at once, the points whose projections are closest to each query's
  projection (QALSH-style, used by NH).
* :meth:`ProjectionTables.probe_furthest_batch` returns the points whose
  projections are furthest from each query's projection (RQALSH-style, used
  by FH); head/tail windows that overlap (``num_points < 2 * probes``) are
  deduplicated so a point can never fill two candidate slots of one table.
* :meth:`ProjectionTables.probe_nearest` / :meth:`probe_furthest` are the
  per-query generator views of the same kernels (one query, yielded table by
  table), kept for callers that probe a single query.

Probing cost per table is ``O(log n + probes)`` thanks to the sorted order,
so query time stays sublinear in ``n`` — while index size is
``O(n * num_tables)``, reproducing the large index footprint of the hashing
baselines in Table III.

Batch probe API
---------------
The batched kernels answer ``q`` queries against ``t`` tables with ``t``
vectorized table passes instead of ``q * t`` per-table Python iterations:

1. :meth:`project_queries` maps a ``(q, dim)`` query block to its
   ``(q, t)`` per-table projections;
2. ``probe_*_batch`` turns those projections into a dense
   ``(q, t, probes)`` candidate-id array via one ``np.searchsorted`` +
   window gather + ``argpartition`` trim per table.

Determinism contract: every step of the batched kernels is *per-row
independent* (element-wise arithmetic, per-element binary search, per-row
partition), so the results are bit-identical no matter how a batch is
chunked — including a batch of one, which is exactly what the sequential
generators run.  The one operation that would break this is a whole-batch
GEMM for the query projections: BLAS GEMM results differ from the per-query
GEMV kernel in the last ulp and depend on the batch size (measured on this
build of OpenBLAS; see :mod:`repro.engine.batch`), and an ulp-perturbed
projection can flip a ``searchsorted`` boundary or a window-trim tie and
silently change *which* candidates are probed.  :meth:`project_queries`
therefore applies the same GEMV kernel per row.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.utils.rng import ensure_rng


class ProjectionTables:
    """Sorted random-projection tables over a fixed point matrix.

    Parameters
    ----------
    num_tables:
        Number of projection lines (``m`` in the paper's parameter grid).
    rng:
        Seed or generator for the random directions.
    """

    def __init__(self, num_tables: int, *, rng=None) -> None:
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        self.num_tables = int(num_tables)
        self._rng = ensure_rng(rng)
        self.directions: np.ndarray = None        # (num_tables, dim)
        self.projections: np.ndarray = None       # (num_tables, n) sorted values
        self.order: np.ndarray = None              # (num_tables, n) point ids
        self.num_points = 0

    def fit(self, points: np.ndarray, point_ids: np.ndarray = None) -> "ProjectionTables":
        """Project ``points`` onto the random directions and sort each table.

        Parameters
        ----------
        points:
            Matrix of shape ``(n, dim)`` in the (possibly lifted) space;
            must contain at least one point.
        point_ids:
            Optional ids to report for each row (defaults to ``0..n-1``);
            FH uses this to keep original dataset ids inside norm partitions.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n, dim = points.shape
        if n == 0:
            raise ValueError(
                "ProjectionTables.fit requires at least one point; got an "
                "empty matrix (a zero-point partition cannot be probed)"
            )
        if point_ids is None:
            point_ids = np.arange(n, dtype=np.int64)
        else:
            point_ids = np.asarray(point_ids, dtype=np.int64)
            if point_ids.shape[0] != n:
                raise ValueError("point_ids must have one entry per point")

        directions = self._rng.normal(size=(self.num_tables, dim))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        raw = points @ directions.T                      # (n, num_tables)

        order = np.argsort(raw, axis=0, kind="stable").T  # (num_tables, n)
        projections = np.take_along_axis(raw.T, order, axis=1)

        self.directions = directions
        self.projections = projections
        self.order = point_ids[order]
        self.num_points = n
        return self

    # ------------------------------------------------------------------ query

    def project_query(self, query: np.ndarray) -> np.ndarray:
        """Project a (lifted, transformed) query onto every table's direction."""
        query = np.asarray(query, dtype=np.float64)
        return self.directions @ query

    def project_queries(
        self, queries: np.ndarray, *, num_tables: Optional[int] = None
    ) -> np.ndarray:
        """Per-table projections ``(q, tables)`` for a whole query block.

        ``num_tables`` restricts the projection to the first tables (the
        query-time override): unused tables are never projected onto, so an
        override of ``m' < m`` pays only ``m'`` inner products per query.

        Each row is computed with the same ``directions @ query`` GEMV
        kernel as :meth:`project_query` rather than one whole-block GEMM —
        GEMM results are not bit-reproducible against the GEMV kernel and
        vary with the block size, which would let the chunking of a batch
        change which candidates a ``searchsorted`` window captures (see the
        module docstring).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        directions = (
            self.directions if num_tables is None else self.directions[:num_tables]
        )
        out = np.empty((queries.shape[0], directions.shape[0]), dtype=np.float64)
        for row in range(queries.shape[0]):
            out[row] = directions @ queries[row]
        return out

    def probe_nearest_batch(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> np.ndarray:
        """Candidate ids projection-closest to each query, every table at once.

        Parameters
        ----------
        query_projections:
            ``(q, tables)`` projections from :meth:`project_queries`; passing
            fewer columns than ``num_tables`` probes only those tables.
        probes_per_table:
            Candidates kept per table (clamped to the population size).

        Returns
        -------
        numpy.ndarray
            Dense id array of shape ``(q, tables, t)`` with
            ``t = min(probes_per_table, num_points)``; ``out[i, j]`` holds
            the ids of the ``t`` points whose projections are closest to
            query ``i`` in table ``j``.
        """
        query_projections = np.atleast_2d(
            np.asarray(query_projections, dtype=np.float64)
        )
        num_queries, tables_used = query_projections.shape
        probes = max(1, int(probes_per_table))
        n = self.num_points
        take = min(probes, n)
        # The window around the insertion position spans at most
        # min(2 * probes, n) sorted slots.  Only the binary search is done
        # table by table; window gather, gap computation, and trimming run
        # as single 3-D operations over all queries and tables at once.
        cap = min(2 * probes, n)
        pos = np.empty((num_queries, tables_used), dtype=np.int64)
        for table in range(tables_used):
            pos[:, table] = self.projections[table].searchsorted(
                query_projections[:, table]
            )
        lo = np.maximum(0, pos - probes)                     # (q, tables)
        hi = np.minimum(n, pos + probes)
        cols = lo[:, :, None] + np.arange(cap)[None, None, :]
        valid = cols < hi[:, :, None]
        np.minimum(cols, n - 1, out=cols)
        table_idx = np.arange(tables_used)[None, :, None]
        gaps = np.abs(
            self.projections[table_idx, cols]
            - query_projections[:, :, None]
        )
        gaps[~valid] = np.inf
        if cap > take:
            keep = gaps.argpartition(take - 1, axis=2)[:, :, :take]
        else:
            keep = np.broadcast_to(
                np.arange(take)[None, None, :],
                (num_queries, tables_used, take),
            )
        kept_cols = np.take_along_axis(cols, keep, axis=2)
        return self.order[table_idx, kept_cols]

    def probe_furthest_batch(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> np.ndarray:
        """Candidate ids projection-furthest from each query, every table at once.

        Same shape contract as :meth:`probe_nearest_batch`.  The candidate
        pool per table is the union of the ``t`` head and ``t`` tail slots of
        the sorted projections; when the two windows overlap
        (``num_points < 2 * t``) the overlap is deduplicated *before*
        selection, so every returned slot holds a distinct point and the
        per-table candidate budget is never silently shrunk.
        """
        query_projections = np.atleast_2d(
            np.asarray(query_projections, dtype=np.float64)
        )
        num_queries, tables_used = query_projections.shape
        probes = max(1, int(probes_per_table))
        n = self.num_points
        take = min(probes, n)
        # Head/tail slot positions are query-independent; dedupe the overlap
        # once.  ``positions`` is sorted with min(2 * take, n) distinct
        # slots, so the whole probe reduces to one gap computation and one
        # per-lane partition over all queries and tables at once (no
        # binary search needed, unlike the nearest-probe kernel).
        positions = np.unique(
            np.concatenate([np.arange(take), np.arange(n - take, n)])
        )
        pool = positions.shape[0]
        values = self.projections[:tables_used, positions]   # (tables, pool)
        ids = self.order[:tables_used, positions]
        gaps = np.abs(values[None, :, :] - query_projections[:, :, None])
        if pool > take:
            keep = np.argpartition(-gaps, take - 1, axis=2)[:, :, :take]
        else:
            keep = np.broadcast_to(
                np.arange(take)[None, None, :],
                (num_queries, tables_used, take),
            )
        return ids[np.arange(tables_used)[None, :, None], keep]

    def probe_nearest(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> Iterable[np.ndarray]:
        """Yield, per table, ids of points projection-closest to the query.

        Per-query generator view of :meth:`probe_nearest_batch` (it runs the
        batched kernel on a block of one, so a sequential probe is
        bit-identical to the same query inside any batch).  All tables are
        probed eagerly before the first yield — breaking out early saves no
        work; probe fewer columns of ``query_projections`` instead.
        """
        block = self.probe_nearest_batch(
            np.asarray(query_projections, dtype=np.float64)[None, :],
            probes_per_table,
        )[0]
        for table in range(block.shape[0]):
            yield block[table]

    def probe_furthest(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> Iterable[np.ndarray]:
        """Yield, per table, ids of points projection-furthest from the query.

        Per-query generator view of :meth:`probe_furthest_batch`; each
        yielded id array is duplicate-free even when the head and tail
        windows overlap.  All tables are probed eagerly before the first
        yield — breaking out early saves no work; probe fewer columns of
        ``query_projections`` instead.
        """
        block = self.probe_furthest_batch(
            np.asarray(query_projections, dtype=np.float64)[None, :],
            probes_per_table,
        )[0]
        for table in range(block.shape[0]):
            yield block[table]

    # ------------------------------------------------------------------ misc

    def payload_arrays(self) -> List[np.ndarray]:
        """Arrays counted towards the index size."""
        arrays = []
        for arr in (self.directions, self.projections, self.order):
            if arr is not None:
                arrays.append(arr)
        return arrays

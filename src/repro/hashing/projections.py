"""Query-aware projection tables — the LSH substrate for NH and FH.

Both NH and FH in the original implementation are built on query-aware LSH
(QALSH for the nearest-neighbor variant, RQALSH for the furthest-neighbor
variant): every hash table is a single random projection line; the data's
projections are kept sorted, and at query time the table is probed around
(or away from) the query's projection.

This module provides that substrate:

* :class:`ProjectionTables` stores ``num_tables`` random unit directions and
  the per-table sorted data projections.
* :meth:`ProjectionTables.probe_nearest` returns, per table, the points whose
  projections are closest to the query's projection (QALSH-style, used by
  NH).
* :meth:`ProjectionTables.probe_furthest` returns the points whose
  projections are furthest from the query's projection (RQALSH-style, used
  by FH).

Probing cost per table is ``O(log n + probes)`` thanks to the sorted order,
so query time stays sublinear in ``n`` — while index size is
``O(n * num_tables)``, reproducing the large index footprint of the hashing
baselines in Table III.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.utils.rng import ensure_rng


class ProjectionTables:
    """Sorted random-projection tables over a fixed point matrix.

    Parameters
    ----------
    num_tables:
        Number of projection lines (``m`` in the paper's parameter grid).
    rng:
        Seed or generator for the random directions.
    """

    def __init__(self, num_tables: int, *, rng=None) -> None:
        if num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {num_tables}")
        self.num_tables = int(num_tables)
        self._rng = ensure_rng(rng)
        self.directions: np.ndarray = None        # (num_tables, dim)
        self.projections: np.ndarray = None       # (num_tables, n) sorted values
        self.order: np.ndarray = None              # (num_tables, n) point ids
        self.num_points = 0

    def fit(self, points: np.ndarray, point_ids: np.ndarray = None) -> "ProjectionTables":
        """Project ``points`` onto the random directions and sort each table.

        Parameters
        ----------
        points:
            Matrix of shape ``(n, dim)`` in the (possibly lifted) space.
        point_ids:
            Optional ids to report for each row (defaults to ``0..n-1``);
            FH uses this to keep original dataset ids inside norm partitions.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n, dim = points.shape
        if point_ids is None:
            point_ids = np.arange(n, dtype=np.int64)
        else:
            point_ids = np.asarray(point_ids, dtype=np.int64)
            if point_ids.shape[0] != n:
                raise ValueError("point_ids must have one entry per point")

        directions = self._rng.normal(size=(self.num_tables, dim))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        raw = points @ directions.T                      # (n, num_tables)

        order = np.argsort(raw, axis=0, kind="stable").T  # (num_tables, n)
        projections = np.take_along_axis(raw.T, order, axis=1)

        self.directions = directions
        self.projections = projections
        self.order = point_ids[order]
        self.num_points = n
        return self

    # ------------------------------------------------------------------ query

    def project_query(self, query: np.ndarray) -> np.ndarray:
        """Project a (lifted, transformed) query onto every table's direction."""
        query = np.asarray(query, dtype=np.float64)
        return self.directions @ query

    def probe_nearest(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> Iterable[np.ndarray]:
        """Yield, per table, ids of points projection-closest to the query."""
        probes_per_table = max(1, int(probes_per_table))
        for table in range(self.num_tables):
            values = self.projections[table]
            ids = self.order[table]
            pos = int(np.searchsorted(values, query_projections[table]))
            lo = max(0, pos - probes_per_table)
            hi = min(self.num_points, pos + probes_per_table)
            window_ids = ids[lo:hi]
            window_vals = values[lo:hi]
            if window_ids.shape[0] > probes_per_table:
                gaps = np.abs(window_vals - query_projections[table])
                keep = np.argpartition(gaps, probes_per_table - 1)[:probes_per_table]
                window_ids = window_ids[keep]
            yield window_ids

    def probe_furthest(
        self, query_projections: np.ndarray, probes_per_table: int
    ) -> Iterable[np.ndarray]:
        """Yield, per table, ids of points projection-furthest from the query."""
        probes_per_table = max(1, int(probes_per_table))
        for table in range(self.num_tables):
            values = self.projections[table]
            ids = self.order[table]
            query_value = query_projections[table]
            take = min(probes_per_table, self.num_points)
            head_ids = ids[:take]
            head_gap = np.abs(values[:take] - query_value)
            tail_ids = ids[self.num_points - take:]
            tail_gap = np.abs(values[self.num_points - take:] - query_value)
            merged_ids = np.concatenate([head_ids, tail_ids])
            merged_gap = np.concatenate([head_gap, tail_gap])
            if merged_ids.shape[0] > take:
                keep = np.argpartition(-merged_gap, take - 1)[:take]
                merged_ids = merged_ids[keep]
            yield merged_ids

    # ------------------------------------------------------------------ misc

    def payload_arrays(self) -> List[np.ndarray]:
        """Arrays counted towards the index size."""
        arrays = []
        for arr in (self.directions, self.projections, self.order):
            if arr is not None:
                arrays.append(arr)
        return arrays

"""Node splitting rules for Ball-Tree / BC-Tree construction.

The paper uses the classic *seed-grow* rule (Algorithm 2): pick a random
point ``v``, take the point ``x_l`` furthest from ``v`` and the point
``x_r`` furthest from ``x_l`` as pivots, then assign every point to its
closer pivot.  We also provide a deterministic PCA-style fallback used when
the seed-grow rule degenerates (all points identical), and expose the split
as a pure function on index arrays so trees can share it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import ensure_rng


def seed_grow_pivots(
    points: np.ndarray, rng: np.random.Generator
) -> Tuple[int, int]:
    """Select two far-apart pivot rows with the seed-grow rule (Algorithm 2).

    Parameters
    ----------
    points:
        The points of the node being split, shape ``(m, d)`` with ``m >= 2``.
    rng:
        Random generator used to draw the seed point.

    Returns
    -------
    (int, int)
        Row indices (local to ``points``) of the left and right pivots.
    """
    m = points.shape[0]
    if m < 2:
        raise ValueError("need at least two points to pick split pivots")
    seed = int(rng.integers(0, m))
    dist_to_seed = np.linalg.norm(points - points[seed], axis=1)
    left = int(np.argmax(dist_to_seed))
    dist_to_left = np.linalg.norm(points - points[left], axis=1)
    right = int(np.argmax(dist_to_left))
    return left, right


def seed_grow_split(
    points: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Partition ``points`` into two halves around seed-grow pivots.

    Every point goes to the pivot it is closer to (ties to the left pivot,
    matching Algorithm 1 line 8).  If the rule degenerates — all points are
    identical so both pivots coincide — the node is split by position into
    two near-equal halves so construction always terminates.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Boolean-free local index arrays ``(left_rows, right_rows)``; both are
        non-empty whenever ``points`` has at least two rows.
    """
    m = points.shape[0]
    left_pivot, right_pivot = seed_grow_pivots(points, rng)
    if left_pivot == right_pivot or np.allclose(
        points[left_pivot], points[right_pivot]
    ):
        half = m // 2
        return np.arange(half), np.arange(half, m)

    dist_left = np.linalg.norm(points - points[left_pivot], axis=1)
    dist_right = np.linalg.norm(points - points[right_pivot], axis=1)
    to_left = dist_left <= dist_right
    left_rows = np.flatnonzero(to_left)
    right_rows = np.flatnonzero(~to_left)
    if left_rows.size == 0 or right_rows.size == 0:
        # Numerically possible when many duplicates collapse on one pivot:
        # fall back to a positional split to guarantee progress.
        half = m // 2
        return np.arange(half), np.arange(half, m)
    return left_rows, right_rows


def make_split_rng(seed) -> np.random.Generator:
    """Helper for constructors: coerce a seed into a generator."""
    return ensure_rng(seed)

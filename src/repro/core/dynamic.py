"""Dynamic P2HNNS index supporting inserts and deletes.

The paper's Ball-Tree and BC-Tree are static, bulk-built structures.  A
downstream user of the library (e.g. an active-learning loop that keeps
labeling and removing points, Section I) needs an index that stays correct
under updates without paying a full rebuild per update.  This module wraps
any static :class:`~repro.core.index_base.P2HIndex` with the standard
*main index + delta buffer + tombstones* scheme:

* **Inserts** land in a small brute-force buffer that is scanned exactly at
  query time (the buffer is tiny compared to the main index, so the extra
  cost is one vectorized inner-product pass).
* **Deletes** mark points in a tombstone set; searches over-fetch from the
  main index and filter tombstoned candidates out.
* When the buffer or the tombstones exceed a configurable fraction of the
  indexed points, the structure is **rebuilt** from scratch (Ball-Tree /
  BC-Tree construction is roughly linear, so periodic rebuilds keep the
  amortized update cost low — this is precisely the "lightweight
  construction" property the paper emphasizes).

The wrapper exposes the same ``search`` contract as the static indexes and
adds ``insert`` / ``delete`` / ``rebuild``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

import numpy as np

from repro.core.distances import augment_points, normalize_query
from repro.core.factories import DefaultBCTreeFactory
from repro.core.index_base import NotFittedError, P2HIndex
from repro.core.results import SearchResult, SearchStats, TopKCollector
from repro.engine.batch import BatchSearchResult, execute_batch
from repro.storage import combined_storage_header
from repro.utils.persistence import dump_index_payload, load_typed_index
from repro.utils.validation import check_points_matrix, check_query_vector


class DynamicP2HIndex:
    """Insert/delete-capable wrapper around a static P2HNNS index.

    Parameters
    ----------
    index_factory:
        Zero-argument callable returning a fresh, unfitted static index
        (default: ``BCTree()``).  A new instance is created at every rebuild.
    rebuild_threshold:
        Rebuild when ``(buffered inserts + tombstoned deletes)`` exceeds this
        fraction of the points currently owned by the static index
        (default 0.25).
    auto_rebuild:
        If False, rebuilds only happen when :meth:`rebuild` is called
        explicitly; queries remain correct either way.

    Notes
    -----
    Point identifiers are stable: every inserted point receives a
    monotonically increasing integer id, and search results report these ids
    (not positions inside the current static index).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.dynamic import DynamicP2HIndex
    >>> rng = np.random.default_rng(0)
    >>> index = DynamicP2HIndex(random_state=0)
    >>> ids = index.insert(rng.normal(size=(200, 8)))
    >>> more = index.insert(rng.normal(size=(50, 8)))
    >>> index.delete(ids[:10])
    >>> result = index.search(rng.normal(size=9), k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        index_factory: Optional[Callable[[], P2HIndex]] = None,
        *,
        rebuild_threshold: float = 0.25,
        auto_rebuild: bool = True,
        random_state=None,
    ) -> None:
        if rebuild_threshold <= 0.0:
            raise ValueError(
                f"rebuild_threshold must be positive, got {rebuild_threshold}"
            )
        if index_factory is None:
            index_factory = DefaultBCTreeFactory(random_state)
        self.index_factory = index_factory
        self.rebuild_threshold = float(rebuild_threshold)
        self.auto_rebuild = bool(auto_rebuild)

        self._static_index: Optional[P2HIndex] = None
        # Raw (non-augmented) points of every live id, keyed by insertion order.
        self._static_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._static_points: Optional[np.ndarray] = None
        self._buffer_ids: List[int] = []
        self._buffer_points: List[np.ndarray] = []
        self._tombstones: Set[int] = set()
        self._next_id: int = 0
        self.num_rebuilds: int = 0
        # Bumped on every state change; long-lived process pools (the
        # repro.api.Searcher session) compare it to detect that their
        # worker-side snapshot of the index went stale and must be rebuilt.
        self._mutation_version: int = 0

    # ------------------------------------------------------------ properties

    @property
    def num_points(self) -> int:
        """Number of live (inserted and not deleted) points."""
        return int(self._static_ids.size + len(self._buffer_ids) - len(self._tombstones))

    @property
    def dim(self) -> Optional[int]:
        """Raw point dimension (``d - 1``), or None before the first insert."""
        if self._static_points is not None:
            return int(self._static_points.shape[1])
        if self._buffer_points:
            return int(self._buffer_points[0].shape[0])
        return None

    @property
    def buffer_size(self) -> int:
        """Number of points waiting in the brute-force insert buffer."""
        return len(self._buffer_ids)

    @property
    def num_tombstones(self) -> int:
        """Number of deleted points not yet purged by a rebuild."""
        return len(self._tombstones)

    # ------------------------------------------------------------------ API

    def insert(self, points: np.ndarray) -> np.ndarray:
        """Insert one or more raw points; returns their assigned ids."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        pts = check_points_matrix(pts, name="points")
        expected = self.dim
        if expected is not None and pts.shape[1] != expected:
            raise ValueError(
                f"points have dimension {pts.shape[1]}, expected {expected}"
            )
        ids = np.arange(self._next_id, self._next_id + pts.shape[0], dtype=np.int64)
        self._next_id += pts.shape[0]
        for row, point_id in zip(pts, ids):
            self._buffer_ids.append(int(point_id))
            self._buffer_points.append(row.copy())
        self._mutation_version += 1
        self._maybe_rebuild()
        return ids

    def delete(self, ids) -> int:
        """Delete points by id; returns the number of points actually removed."""
        requested = {int(i) for i in np.atleast_1d(np.asarray(ids, dtype=np.int64))}
        live = self._live_ids()
        removable = requested & live
        if removable:
            self._tombstones.update(removable)
            self._mutation_version += 1
        self._maybe_rebuild()
        return len(removable)

    def search(self, query: np.ndarray, k: int = 1, **search_kwargs) -> SearchResult:
        """Top-``k`` P2HNNS over all live points (static index + buffer)."""
        if self.num_points == 0:
            raise NotFittedError("the dynamic index contains no points")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        expected_dim = self.dim + 1
        q = check_query_vector(query, expected_dim=expected_dim, name="query")
        q = normalize_query(q)

        stats = SearchStats()
        collector = TopKCollector(k)

        # Main index: over-fetch to survive tombstone filtering.
        if self._static_index is not None and self._static_ids.size:
            static_tombstoned = sum(
                1 for i in self._static_ids if int(i) in self._tombstones
            )
            fetch = min(int(self._static_ids.size), k + static_tombstoned)
            static_result = self._static_index.search(q, k=fetch, **search_kwargs)
            stats.merge(static_result.stats)
            for pos, dist in zip(static_result.indices, static_result.distances):
                point_id = int(self._static_ids[int(pos)])
                if point_id in self._tombstones:
                    continue
                collector.offer(point_id, float(dist))

        # Insert buffer: exact vectorized scan.
        if self._buffer_ids:
            buffer_ids = np.asarray(self._buffer_ids, dtype=np.int64)
            live_mask = np.array(
                [int(i) not in self._tombstones for i in buffer_ids], dtype=bool
            )
            if live_mask.any():
                buffer_points = augment_points(np.vstack(self._buffer_points))
                distances = np.abs(buffer_points[live_mask] @ q)
                collector.offer_batch(buffer_ids[live_mask], distances)
                stats.candidates_verified += int(live_mask.sum())

        return collector.to_result(stats)

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        **search_kwargs,
    ) -> BatchSearchResult:
        """Run :meth:`search` for every row of ``queries``.

        Dispatched through :func:`repro.engine.batch.execute_batch`, so
        results are bit-identical to sequential per-query calls for every
        ``n_jobs``.
        """
        return execute_batch(
            self, queries, k, n_jobs=n_jobs, executor=executor, **search_kwargs
        )

    def rebuild(self) -> None:
        """Fold the buffer and purge tombstones into a freshly built index."""
        self._mutation_version += 1
        live_points, live_ids = self._live_points()
        self._buffer_ids = []
        self._buffer_points = []
        self._tombstones = set()
        if live_ids.size == 0:
            self._static_index = None
            self._static_ids = np.empty(0, dtype=np.int64)
            self._static_points = None
            return
        self._static_points = live_points
        self._static_ids = live_ids
        self._static_index = self.index_factory().fit(live_points)
        self.num_rebuilds += 1

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Persist the full dynamic state (static index, buffer, tombstones).

        The file uses the same versioned payload format as every static
        index (:mod:`repro.utils.persistence`), so
        :func:`repro.api.load_index` reconstructs it without knowing the
        class up front.  ``index_factory`` is pickled along — the default
        factory and the API layer's spec factory are picklable; a custom
        ``lambda`` factory is not and raises here.
        """
        stores = self._array_stores()
        header = combined_storage_header(stores)
        dump_index_payload(
            path,
            self,
            spec=getattr(self, "_api_spec", None),
            storage_dtype=header["dtype"] if header else "float64",
            storage=header,
            stores=stores,
        )

    def _array_stores(self):
        """The static sub-index's stores (buffer rows stay resident)."""
        if self._static_index is None:
            return []
        return list(self._static_index._array_stores())

    def to_storage(self, storage) -> "DynamicP2HIndex":
        """Migrate the static sub-index's point arrays (buffer stays RAM).

        Note the next :meth:`rebuild` refits through ``index_factory``,
        whose own ``storage`` configuration then applies.
        """
        if self._static_index is not None:
            self._static_index.to_storage(storage)
        return self

    @classmethod
    def load(cls, path) -> "DynamicP2HIndex":
        """Load a dynamic index previously stored with :meth:`save`."""
        return load_typed_index(path, cls)

    def point(self, point_id: int) -> np.ndarray:
        """Return the raw coordinates of a live point by id."""
        point_id = int(point_id)
        if point_id in self._tombstones:
            raise KeyError(f"point {point_id} has been deleted")
        positions = np.nonzero(self._static_ids == point_id)[0]
        if positions.size:
            return self._static_points[int(positions[0])].copy()
        for buffered_id, row in zip(self._buffer_ids, self._buffer_points):
            if buffered_id == point_id:
                return row.copy()
        raise KeyError(f"unknown point id {point_id}")

    # ------------------------------------------------------------ internals

    def _live_ids(self) -> Set[int]:
        ids = {int(i) for i in self._static_ids}
        ids.update(self._buffer_ids)
        ids -= self._tombstones
        return ids

    def _live_points(self):
        rows: List[np.ndarray] = []
        ids: List[int] = []
        if self._static_points is not None:
            for row, point_id in zip(self._static_points, self._static_ids):
                if int(point_id) not in self._tombstones:
                    rows.append(row)
                    ids.append(int(point_id))
        for point_id, row in zip(self._buffer_ids, self._buffer_points):
            if point_id not in self._tombstones:
                rows.append(row)
                ids.append(point_id)
        if not rows:
            return np.empty((0, 0)), np.empty(0, dtype=np.int64)
        return np.vstack(rows), np.asarray(ids, dtype=np.int64)

    def _maybe_rebuild(self) -> None:
        if not self.auto_rebuild:
            return
        base = max(int(self._static_ids.size), 1)
        pending = len(self._buffer_ids) + len(self._tombstones)
        if self._static_index is None or pending > self.rebuild_threshold * base:
            self.rebuild()

"""Maximum Inner Product Search (MIPS) on the same Ball-Tree structure.

Section VI of the paper relates P2HNNS to MIPS: both minimize / maximize an
inner product and neither objective is a metric.  The classic tree-based
MIPS method (Ram & Gray, KDD 2012) bounds the maximum inner product of a
query ``q`` with any point inside a ball centered at ``c`` with radius ``r``
by

    max_{x in B(c, r)} <x, q>  <=  <q, c> + ||q|| * r

which is the mirror image of the paper's node-level ball bound (Theorem 2).
This module implements that branch-and-bound on the library's flat
:class:`~repro.core.tree_base.TreeArrays`, both to reproduce the related-work
baseline and because a MIPS index falls out of the Ball-Tree machinery almost
for free — it is a useful extension for downstream users (recommendation
retrieval, max-kernel search).

Two query modes are provided:

* :meth:`BallTreeMIPS.search` — top-k *maximum inner product* (signed).
* :meth:`BallTreeMIPS.search_absolute` — top-k *maximum absolute* inner
  product, i.e. the point-to-hyperplane *furthest* neighbor after the
  paper's augmentation; the node bound becomes ``|<q, c>| + ||q|| r``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.index_base import NotFittedError
from repro.core.results import SearchResult, SearchStats
from repro.core.tree_base import NO_CHILD, TreeArrays, build_tree
from repro.engine.batch import BatchSearchResult, execute_batch
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_points_matrix,
    check_positive_int,
    check_query_vector,
)


class _TopKMaxCollector:
    """Bounded min-heap of the k largest scores seen so far."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self._heap: List[Tuple[float, int]] = []

    @property
    def threshold(self) -> float:
        """Current k-th largest score (``-inf`` until k candidates are seen)."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, index: int, score: float) -> bool:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (score, index))
            return True
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, (score, index))
            return True
        return False

    def offer_batch(self, indices: np.ndarray, scores: np.ndarray) -> None:
        if len(indices) == 0:
            return
        threshold = self.threshold
        if np.isfinite(threshold):
            mask = scores > threshold
            if not mask.any():
                return
            indices = indices[mask]
            scores = scores[mask]
        for idx, score in zip(indices, scores):
            self.offer(int(idx), float(score))

    def to_result(self, stats: SearchStats) -> SearchResult:
        if not self._heap:
            return SearchResult(
                indices=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float64),
                stats=stats,
            )
        pairs = sorted(self._heap, reverse=True)
        scores = np.array([p[0] for p in pairs], dtype=np.float64)
        indices = np.array([p[1] for p in pairs], dtype=np.int64)
        return SearchResult(indices=indices, distances=scores, stats=stats)


def node_mips_bound(ip_center: float, query_norm: float, radius: float) -> float:
    """Upper bound on ``<x, q>`` for any ``x`` in the ball (Ram & Gray 2012)."""
    return ip_center + query_norm * radius


def node_absolute_mips_bound(
    ip_center: float, query_norm: float, radius: float
) -> float:
    """Upper bound on ``|<x, q>|`` for any ``x`` in the ball.

    The absolute value of the inner product is maximized either on the side
    of the ball closest to ``q`` (positive direction) or furthest from it
    (negative direction); both are covered by ``|<q, c>| + ||q|| r``.
    """
    return abs(ip_center) + query_norm * radius


class BallTreeMIPS:
    """Ball-Tree index for (absolute) maximum inner product search.

    Unlike the P2HNNS indexes, MIPS queries are ordinary vectors (not
    hyperplanes), so points are *not* augmented and queries are *not*
    rescaled.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf.
    random_state:
        Seed or generator for the seed-grow split.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.mips import BallTreeMIPS
    >>> rng = np.random.default_rng(1)
    >>> data = rng.normal(size=(300, 8))
    >>> index = BallTreeMIPS(leaf_size=32, random_state=1).fit(data)
    >>> result = index.search(rng.normal(size=8), k=3)
    >>> len(result)
    3
    """

    def __init__(self, leaf_size: int = 100, *, random_state=None) -> None:
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.random_state = random_state
        self.tree: Optional[TreeArrays] = None
        self._points: Optional[np.ndarray] = None
        self.num_points: int = 0
        self.dim: int = 0
        self.indexing_seconds: float = 0.0
        # Bumped by every (re)fit; see P2HIndex for the session contract.
        self._mutation_version: int = 0

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray) -> "BallTreeMIPS":
        """Build the index over raw ``(n, d)`` points."""
        pts = check_points_matrix(points, name="points")
        self._points = pts
        self.num_points, self.dim = pts.shape
        self._mutation_version += 1
        with Timer() as timer:
            self.tree = build_tree(pts, self.leaf_size, rng=self.random_state)
        self.indexing_seconds = timer.elapsed
        return self

    def search(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Top-``k`` points maximizing the *signed* inner product ``<x, q>``."""
        return self._search(query, k, absolute=False)

    def search_absolute(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Top-``k`` points maximizing ``|<x, q>|`` (P2H furthest neighbors)."""
        return self._search(query, k, absolute=True)

    #: Thread-executor Searcher sessions route through this override so the
    #: batch-level-only ``absolute`` flag keeps working under a session.
    _session_native_batch = True

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        absolute: bool = False,
    ) -> BatchSearchResult:
        """Run :meth:`search` (or :meth:`search_absolute`) for every query.

        Dispatched through :func:`repro.engine.batch.execute_batch`, so
        results are bit-identical to sequential per-query calls for every
        ``n_jobs``.  Only the thread executor is supported (the MIPS modes
        dispatch through a ``search_fn`` closure, which the process
        executor rejects).
        """
        search = self.search_absolute if absolute else self.search
        return execute_batch(
            self, queries, k, n_jobs=n_jobs, executor=executor,
            search_fn=lambda q: search(q, k=k),
        )

    def index_size_bytes(self) -> int:
        """Memory footprint of the tree arrays in bytes."""
        self._check_fitted()
        return int(sum(arr.nbytes for arr in self.tree.payload_arrays()))

    # ------------------------------------------------------------ internals

    def _check_fitted(self) -> None:
        if self.tree is None or self._points is None:
            raise NotFittedError("BallTreeMIPS must be fitted before searching")

    def _search(self, query: np.ndarray, k: int, *, absolute: bool) -> SearchResult:
        self._check_fitted()
        q = check_query_vector(query, expected_dim=self.dim, name="query")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)

        tree = self.tree
        points = self._points
        centers = tree.centers
        radii = tree.radii
        query_norm = float(np.linalg.norm(q))
        bound_fn = node_absolute_mips_bound if absolute else node_mips_bound

        stats = SearchStats()
        collector = _TopKMaxCollector(k)

        with Timer() as timer:
            root_ip = float(centers[0] @ q)
            stats.center_inner_products += 1
            stack = [(0, root_ip)]
            while stack:
                node, ip_node = stack.pop()
                stats.nodes_visited += 1
                upper = bound_fn(ip_node, query_norm, radii[node])
                if upper <= collector.threshold:
                    continue

                left = tree.left_child[node]
                if left == NO_CHILD:
                    start, end = tree.start[node], tree.end[node]
                    indices = tree.perm[start:end]
                    scores = points[indices] @ q
                    if absolute:
                        scores = np.abs(scores)
                    collector.offer_batch(indices, scores)
                    stats.candidates_verified += int(indices.shape[0])
                    stats.leaves_scanned += 1
                    continue

                right = tree.right_child[node]
                ip_left = float(centers[left] @ q)
                ip_right = float(centers[right] @ q)
                stats.center_inner_products += 2
                upper_left = bound_fn(ip_left, query_norm, radii[left])
                upper_right = bound_fn(ip_right, query_norm, radii[right])
                # Visit the more promising child first (larger upper bound)
                # by pushing it last onto the stack.
                if upper_left >= upper_right:
                    stack.append((right, ip_right))
                    stack.append((left, ip_left))
                else:
                    stack.append((left, ip_left))
                    stack.append((right, ip_right))
        stats.elapsed_seconds = timer.elapsed
        return collector.to_result(stats)

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        if self.tree is None:
            return ()
        return self.tree.payload_arrays()


def linear_mips(points: np.ndarray, query: np.ndarray, k: int = 1) -> SearchResult:
    """Brute-force top-k MIPS (ground truth for tests and benchmarks)."""
    pts = check_points_matrix(points, name="points")
    q = check_query_vector(query, expected_dim=pts.shape[1], name="query")
    k = min(check_positive_int(k, name="k"), pts.shape[0])
    scores = pts @ q
    order = np.argsort(-scores, kind="stable")[:k]
    stats = SearchStats(candidates_verified=int(pts.shape[0]))
    return SearchResult(
        indices=order.astype(np.int64),
        distances=scores[order].astype(np.float64),
        stats=stats,
    )


def linear_mips_batch(
    points: np.ndarray, queries: np.ndarray, k: int = 1
) -> List[SearchResult]:
    """Brute-force top-k MIPS for a whole query batch with one matmul.

    Equivalent to ``[linear_mips(points, q, k) for q in queries]`` up to
    BLAS GEMM-vs-GEMV rounding in the last ulp of the scores.
    """
    pts = check_points_matrix(points, name="points")
    matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if matrix.shape[1] != pts.shape[1]:
        raise ValueError(
            f"queries have dimension {matrix.shape[1]}, expected {pts.shape[1]}"
        )
    k = min(check_positive_int(k, name="k"), pts.shape[0])
    scores = pts @ matrix.T  # one GEMM for the whole batch
    results: List[SearchResult] = []
    for column in range(scores.shape[1]):
        column_scores = scores[:, column]
        order = np.argsort(-column_scores, kind="stable")[:k]
        results.append(
            SearchResult(
                indices=order.astype(np.int64),
                distances=column_scores[order].astype(np.float64),
                stats=SearchStats(candidates_verified=int(pts.shape[0])),
            )
        )
    return results

"""Flat-array ball tree construction shared by Ball-Tree and BC-Tree.

The paper's Algorithms 1 and 4 construct a binary space-partition tree with
the seed-grow split rule and store, per node, the centroid of its points and
the radius of the enclosing ball.  For an efficient NumPy implementation we
store the tree as a *structure of arrays* (the layout used by scikit-learn's
neighbor trees):

* ``perm`` — a permutation of ``0..n-1``; every node owns the contiguous
  slice ``perm[start:end]`` of it, and leaf points are therefore stored
  consecutively (matching the paper's observation that leaf points can be
  scanned sequentially).
* per-node arrays ``centers``, ``radii``, ``start``, ``end``,
  ``left_child`` / ``right_child`` (``-1`` marks a leaf).

Construction is iterative (explicit stack) so deep, unbalanced trees cannot
hit Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.splits import seed_grow_split
from repro.utils.rng import ensure_rng

NO_CHILD = -1


@dataclass
class TreeArrays:
    """Flat representation of a built ball tree."""

    centers: np.ndarray       # (num_nodes, d) node centroids
    radii: np.ndarray         # (num_nodes,) enclosing-ball radii
    start: np.ndarray         # (num_nodes,) slice start into ``perm``
    end: np.ndarray           # (num_nodes,) slice end into ``perm``
    left_child: np.ndarray    # (num_nodes,) index of left child or -1
    right_child: np.ndarray   # (num_nodes,) index of right child or -1
    perm: np.ndarray          # (n,) permutation of point indices
    center_norms: np.ndarray  # (num_nodes,) ||center||, precomputed at build

    @property
    def num_nodes(self) -> int:
        return int(self.centers.shape[0])

    @property
    def num_leaves(self) -> int:
        return int(np.count_nonzero(self.left_child == NO_CHILD))

    def is_leaf(self, node: int) -> bool:
        return self.left_child[node] == NO_CHILD

    def node_size(self, node: int) -> int:
        return int(self.end[node] - self.start[node])

    def node_point_indices(self, node: int) -> np.ndarray:
        """Original point indices owned by ``node``."""
        return self.perm[self.start[node]: self.end[node]]

    def depth(self) -> int:
        """Height of the tree (root counts as depth 1)."""
        depths = np.zeros(self.num_nodes, dtype=np.int64)
        depths[0] = 1
        max_depth = 1
        for node in range(self.num_nodes):
            left = self.left_child[node]
            right = self.right_child[node]
            if left != NO_CHILD:
                depths[left] = depths[node] + 1
                depths[right] = depths[node] + 1
                max_depth = max(max_depth, depths[node] + 1)
        return int(max_depth)

    def payload_arrays(self):
        """Arrays counted towards the index size."""
        return (
            self.centers,
            self.radii,
            self.start,
            self.end,
            self.left_child,
            self.right_child,
            self.perm,
            self.center_norms,
        )


class NodeView:
    """Read-only object view over one node of a :class:`TreeArrays` tree.

    Provided for tests, documentation, and debugging; the search code works
    directly on the flat arrays.
    """

    def __init__(self, tree: TreeArrays, node_id: int, points: Optional[np.ndarray] = None):
        self._tree = tree
        self.node_id = int(node_id)
        self._points = points

    @property
    def center(self) -> np.ndarray:
        return self._tree.centers[self.node_id]

    @property
    def radius(self) -> float:
        return float(self._tree.radii[self.node_id])

    @property
    def is_leaf(self) -> bool:
        return self._tree.is_leaf(self.node_id)

    @property
    def size(self) -> int:
        return self._tree.node_size(self.node_id)

    @property
    def point_indices(self) -> np.ndarray:
        return self._tree.node_point_indices(self.node_id)

    @property
    def points(self) -> np.ndarray:
        if self._points is None:
            raise ValueError("NodeView was created without the point matrix")
        return self._points[self.point_indices]

    @property
    def left(self) -> Optional["NodeView"]:
        child = self._tree.left_child[self.node_id]
        if child == NO_CHILD:
            return None
        return NodeView(self._tree, child, self._points)

    @property
    def right(self) -> Optional["NodeView"]:
        child = self._tree.right_child[self.node_id]
        if child == NO_CHILD:
            return None
        return NodeView(self._tree, child, self._points)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "leaf" if self.is_leaf else "internal"
        return (
            f"NodeView(id={self.node_id}, kind={kind}, size={self.size}, "
            f"radius={self.radius:.4f})"
        )


def build_tree(
    points: np.ndarray,
    leaf_size: int,
    *,
    rng=None,
    centers_from_children: bool = False,
    split_fn=None,
) -> TreeArrays:
    """Build the ball-tree structure over ``points`` (Algorithm 1 / 4).

    Parameters
    ----------
    points:
        Augmented data matrix of shape ``(n, d)``.
    leaf_size:
        Maximum number of points per leaf (``N0`` in the paper).
    rng:
        Seed or generator controlling the seed-grow split.
    centers_from_children:
        If True, internal-node centers are computed from their children's
        centers via the linear property of the centroid (Lemma 1, used by
        BC-Tree construction); otherwise directly as the mean of the node's
        points.  Both give the same centers up to floating-point error.
    split_fn:
        Node-splitting rule ``(node_points, rng) -> (left_rows, right_rows)``.
        Defaults to the paper's seed-grow rule (Algorithm 2); the RP-Tree
        baseline passes a random-projection split instead.  Both halves must
        be non-empty.

    Returns
    -------
    TreeArrays
        The flat tree.  Leaf points occupy contiguous ranges of ``perm`` in
        the order produced by the split (BC-Tree re-sorts them afterwards).
    """
    rng = ensure_rng(rng)
    if split_fn is None:
        split_fn = seed_grow_split
    n, d = points.shape
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    perm = np.arange(n, dtype=np.int64)
    centers: List[np.ndarray] = []
    radii: List[float] = []
    starts: List[int] = []
    ends: List[int] = []
    lefts: List[int] = []
    rights: List[int] = []

    def allocate_node(start: int, end: int) -> int:
        node_id = len(centers)
        centers.append(np.zeros(d, dtype=np.float64))
        radii.append(0.0)
        starts.append(start)
        ends.append(end)
        lefts.append(NO_CHILD)
        rights.append(NO_CHILD)
        return node_id

    root = allocate_node(0, n)
    # Each stack entry is (node_id, phase); phase 0 = expand, phase 1 = finish
    # (compute the internal center from the children when Lemma 1 is used).
    stack = [(root, 0)]
    while stack:
        node_id, phase = stack.pop()
        start, end = starts[node_id], ends[node_id]
        size = end - start
        if phase == 1:
            left_id, right_id = lefts[node_id], rights[node_id]
            left_size = ends[left_id] - starts[left_id]
            right_size = ends[right_id] - starts[right_id]
            centers[node_id] = (
                centers[left_id] * left_size + centers[right_id] * right_size
            ) / size
            node_points = points[perm[start:end]]
            radii[node_id] = float(
                np.max(np.linalg.norm(node_points - centers[node_id], axis=1))
            )
            continue

        node_points = points[perm[start:end]]
        if size <= leaf_size:
            center = node_points.mean(axis=0)
            centers[node_id] = center
            radii[node_id] = float(
                np.max(np.linalg.norm(node_points - center, axis=1))
            )
            continue

        if not centers_from_children:
            center = node_points.mean(axis=0)
            centers[node_id] = center
            radii[node_id] = float(
                np.max(np.linalg.norm(node_points - center, axis=1))
            )

        left_rows, right_rows = split_fn(node_points, rng)
        local = perm[start:end]
        reordered = np.concatenate([local[left_rows], local[right_rows]])
        perm[start:end] = reordered
        mid = start + left_rows.size

        left_id = allocate_node(start, mid)
        right_id = allocate_node(mid, end)
        lefts[node_id] = left_id
        rights[node_id] = right_id

        if centers_from_children:
            # Finish this node only after both children have been built.
            stack.append((node_id, 1))
        stack.append((right_id, 0))
        stack.append((left_id, 0))

    centers_arr = np.asarray(centers, dtype=np.float64)
    return TreeArrays(
        centers=centers_arr,
        radii=np.asarray(radii, dtype=np.float64),
        start=np.asarray(starts, dtype=np.int64),
        end=np.asarray(ends, dtype=np.int64),
        left_child=np.asarray(lefts, dtype=np.int64),
        right_child=np.asarray(rights, dtype=np.int64),
        perm=perm,
        # Search-time leaf kernels need ||center|| per node (the cone bound's
        # query decomposition); computing the norms once here removes a
        # np.linalg.norm call from every leaf visit.
        center_norms=np.linalg.norm(centers_arr, axis=1),
    )

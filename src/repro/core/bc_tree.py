"""BC-Tree index for P2HNNS (paper Section IV, Algorithms 4-5).

BC-Tree is a Ball-Tree whose leaves additionally store, per point, the
*ball* and *cone* structures relative to the leaf center ``c``:

* ``r_x = ||x - c||`` — used by the point-level ball bound (Corollary 1),
  with leaf points sorted by descending ``r_x`` so the bound prunes the
  remaining points in a batch;
* ``||x|| cos(phi_x)`` and ``||x|| sin(phi_x)`` — used by the tighter
  point-level cone bound (Theorem 3).

Internal-node centers are computed from the children's centers via the
linear property of the centroid (Lemma 1), and during search the inner
product of the query with the right child's center is derived in O(1) from
the parent's and left child's inner products (Lemma 2, the *collaborative
inner product computing* strategy, Theorem 5).

The ablation variants of Figure 8 are exposed through the
``use_ball_bound`` / ``use_cone_bound`` constructor flags:

=================  ==========================  ==========================
Paper name          ``use_ball_bound``           ``use_cone_bound``
=================  ==========================  ==========================
BC-Tree             True                         True
BC-Tree-wo-B        False                        True
BC-Tree-wo-C        True                         False
BC-Tree-wo-BC       False                        False
=================  ==========================  ==========================
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.bounds import (
    node_ball_bound,
    point_ball_bound,
    point_cone_bound,
    query_angle_terms,
)
from repro.core.ball_tree import BallTree
from repro.core.policies import BranchPreference
from repro.core.results import SearchResult, SearchStats, TopKCollector
from repro.core.tree_base import NO_CHILD, build_tree


class BCTree(BallTree):
    """BC-Tree index for point-to-hyperplane nearest neighbor search.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf (``N0``; default 100).
    branch_preference:
        Child-visit ordering (center preference by default).
    use_ball_bound, use_cone_bound:
        Enable / disable the two point-level lower bounds (Figure 8
        ablation); both enabled by default.
    collaborative_ip:
        Enable Lemma 2's O(1) derivation of the right child's inner product
        (Theorem 5); enabled by default.  Disabling it only changes the work
        counters, never the results.
    scan_mode:
        ``"vectorized"`` (default) evaluates the point-level bounds for the
        whole leaf in NumPy batch operations using the pruning threshold at
        leaf entry; ``"sequential"`` follows Algorithm 5 point by point and
        tightens the threshold inside the leaf.  Both return identical
        results; the sequential mode verifies slightly fewer candidates at a
        much higher interpreter cost, and exists for fidelity tests.
    random_state, augment, normalize_queries:
        See :class:`~repro.core.ball_tree.BallTree`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BCTree
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(500, 16))
    >>> query = rng.normal(size=17)
    >>> tree = BCTree(leaf_size=32, random_state=0).fit(data)
    >>> result = tree.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        branch_preference=BranchPreference.CENTER,
        use_ball_bound: bool = True,
        use_cone_bound: bool = True,
        collaborative_ip: bool = True,
        scan_mode: str = "vectorized",
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(
            leaf_size,
            branch_preference=branch_preference,
            random_state=random_state,
            augment=augment,
            normalize_queries=normalize_queries,
        )
        if scan_mode not in ("vectorized", "sequential"):
            raise ValueError(
                f"scan_mode must be 'vectorized' or 'sequential', got {scan_mode!r}"
            )
        self.use_ball_bound = bool(use_ball_bound)
        self.use_cone_bound = bool(use_cone_bound)
        self.collaborative_ip = bool(collaborative_ip)
        self.scan_mode = scan_mode
        # Per-point leaf structures, aligned with the tree's ``perm`` order.
        self.point_radius: Optional[np.ndarray] = None
        self.point_cos: Optional[np.ndarray] = None
        self.point_sin: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        """Algorithm 4: Ball-Tree construction plus leaf ball/cone structures."""
        self.tree = build_tree(
            points,
            self.leaf_size,
            rng=self.random_state,
            centers_from_children=True,
        )
        tree = self.tree
        n = points.shape[0]
        self.point_radius = np.zeros(n, dtype=np.float64)
        self.point_cos = np.zeros(n, dtype=np.float64)
        self.point_sin = np.zeros(n, dtype=np.float64)

        for node in range(tree.num_nodes):
            if not tree.is_leaf(node):
                continue
            start, end = tree.start[node], tree.end[node]
            indices = tree.perm[start:end]
            leaf_points = points[indices]
            center = tree.centers[node]
            center_norm = float(np.linalg.norm(center))

            radii = np.linalg.norm(leaf_points - center, axis=1)
            # Sort leaf points by descending r_x (Algorithm 4 line 9) so the
            # point-level ball bound prunes the tail of the leaf in a batch.
            order = np.argsort(-radii, kind="stable")
            indices = indices[order]
            leaf_points = leaf_points[order]
            radii = radii[order]
            tree.perm[start:end] = indices

            norms = np.linalg.norm(leaf_points, axis=1)
            if center_norm > 0.0:
                x_cos = (leaf_points @ center) / center_norm
            else:
                x_cos = np.zeros_like(norms)
            x_sin = np.sqrt(np.maximum(norms * norms - x_cos * x_cos, 0.0))

            self.point_radius[start:end] = radii
            self.point_cos[start:end] = x_cos
            self.point_sin[start:end] = x_sin

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        arrays = list(super()._payload_arrays())
        for extra in (self.point_radius, self.point_cos, self.point_sin):
            if extra is not None:
                arrays.append(extra)
        return arrays

    # ---------------------------------------------------------------- search

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
        branch_preference=None,
        profile: bool = False,
    ) -> SearchResult:
        """Algorithm 5 generalized to top-k with an optional candidate budget."""
        preference = (
            self.branch_preference
            if branch_preference is None
            else BranchPreference.coerce(branch_preference)
        )
        budget = self._resolve_budget(candidate_fraction, max_candidates)

        tree = self.tree
        centers = tree.centers
        radii = tree.radii
        start_arr = tree.start
        end_arr = tree.end
        query_norm = float(np.linalg.norm(query))

        stats = SearchStats()
        collector = TopKCollector(k)

        root_ip = float(centers[0] @ query)
        stats.center_inner_products += 1
        stack = [(0, root_ip)]

        while stack:
            if stats.candidates_verified >= budget:
                break
            node, ip_node = stack.pop()
            stats.nodes_visited += 1

            tic = time.perf_counter() if profile else 0.0
            lower_bound = node_ball_bound(ip_node, query_norm, radii[node])
            if profile:
                stats.stage_seconds["lower_bounds"] = (
                    stats.stage_seconds.get("lower_bounds", 0.0)
                    + (time.perf_counter() - tic)
                )
            if lower_bound >= collector.threshold:
                continue

            left = tree.left_child[node]
            if left == NO_CHILD:
                self._scan_leaf_with_pruning(
                    node, ip_node, query, query_norm, collector, stats, profile
                )
                continue

            right = tree.right_child[node]
            tic = time.perf_counter() if profile else 0.0
            ip_left = float(centers[left] @ query)
            stats.center_inner_products += 1
            if self.collaborative_ip:
                # Lemma 2: derive the right child's inner product in O(1).
                size = end_arr[node] - start_arr[node]
                left_size = end_arr[left] - start_arr[left]
                right_size = end_arr[right] - start_arr[right]
                ip_right = (size * ip_node - left_size * ip_left) / right_size
            else:
                ip_right = float(centers[right] @ query)
                stats.center_inner_products += 1
            if profile:
                stats.stage_seconds["lower_bounds"] = (
                    stats.stage_seconds.get("lower_bounds", 0.0)
                    + (time.perf_counter() - tic)
                )

            if preference is BranchPreference.CENTER:
                left_first = abs(ip_left) < abs(ip_right)
            else:
                lb_left = node_ball_bound(ip_left, query_norm, radii[left])
                lb_right = node_ball_bound(ip_right, query_norm, radii[right])
                left_first = lb_left < lb_right

            if left_first:
                stack.append((right, ip_right))
                stack.append((left, ip_left))
            else:
                stack.append((left, ip_left))
                stack.append((right, ip_right))

        return collector.to_result(stats)

    # ------------------------------------------------------------ leaf scans

    def _scan_leaf_with_pruning(
        self,
        node: int,
        ip_node: float,
        query: np.ndarray,
        query_norm: float,
        collector: TopKCollector,
        stats: SearchStats,
        profile: bool,
    ) -> None:
        """Algorithm 5's ``ScanWithPruning`` with the point-level bounds."""
        stats.leaves_scanned += 1
        if self.scan_mode == "sequential":
            self._scan_leaf_sequential(
                node, ip_node, query, query_norm, collector, stats
            )
            return

        tree = self.tree
        start, end = tree.start[node], tree.end[node]
        indices = tree.perm[start:end]
        size = int(end - start)
        threshold = collector.threshold

        tic = time.perf_counter() if profile else 0.0
        keep = slice(0, size)
        if self.use_ball_bound and np.isfinite(threshold):
            radii = self.point_radius[start:end]
            ball_bounds = point_ball_bound(ip_node, query_norm, radii)
            # Leaf points are sorted by descending r_x, so the ball bound is
            # non-decreasing along the leaf: the first position at which it
            # reaches the threshold prunes the whole tail (batch pruning).
            cut = int(np.searchsorted(ball_bounds, threshold, side="left"))
            stats.points_pruned_ball += size - cut
            keep = slice(0, cut)

        survivors = indices[keep]
        # The cone bound costs a handful of vectorized operations per leaf;
        # when only a few points survive the ball bound, verifying them
        # directly is cheaper than evaluating it.
        if (
            survivors.shape[0] > 8
            and self.use_cone_bound
            and np.isfinite(threshold)
        ):
            center_norm = float(np.linalg.norm(tree.centers[node]))
            q_cos, q_sin = query_angle_terms(ip_node, query_norm, center_norm)
            cone_bounds = point_cone_bound(
                q_cos,
                q_sin,
                self.point_cos[start:end][keep],
                self.point_sin[start:end][keep],
            )
            mask = cone_bounds < threshold
            stats.points_pruned_cone += int(survivors.shape[0] - mask.sum())
            survivors = survivors[mask]
        if profile:
            stats.stage_seconds["lower_bounds"] = (
                stats.stage_seconds.get("lower_bounds", 0.0)
                + (time.perf_counter() - tic)
            )

        if survivors.shape[0] == 0:
            return
        tic = time.perf_counter() if profile else 0.0
        distances = np.abs(self._points[survivors] @ query)
        collector.offer_batch(survivors, distances)
        if profile:
            stats.stage_seconds["verification"] = (
                stats.stage_seconds.get("verification", 0.0)
                + (time.perf_counter() - tic)
            )
        stats.candidates_verified += int(survivors.shape[0])

    def _scan_leaf_sequential(
        self,
        node: int,
        ip_node: float,
        query: np.ndarray,
        query_norm: float,
        collector: TopKCollector,
        stats: SearchStats,
    ) -> None:
        """Point-by-point leaf scan exactly as written in Algorithm 5."""
        tree = self.tree
        start, end = tree.start[node], tree.end[node]
        center_norm = float(np.linalg.norm(tree.centers[node]))
        q_cos, q_sin = query_angle_terms(ip_node, query_norm, center_norm)
        points = self._points

        for pos in range(start, end):
            threshold = collector.threshold
            if self.use_ball_bound:
                ball = float(
                    point_ball_bound(ip_node, query_norm, self.point_radius[pos])
                )
                if ball >= threshold:
                    # Remaining points have larger or equal bounds: batch prune.
                    stats.points_pruned_ball += end - pos
                    return
            if self.use_cone_bound:
                cone = point_cone_bound(
                    q_cos, q_sin, self.point_cos[pos], self.point_sin[pos]
                )
                if cone >= threshold:
                    stats.points_pruned_cone += 1
                    continue
            index = int(tree.perm[pos])
            distance = float(abs(points[index] @ query))
            stats.candidates_verified += 1
            collector.offer(index, distance)

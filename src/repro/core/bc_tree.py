"""BC-Tree index for P2HNNS (paper Section IV, Algorithms 4-5).

BC-Tree is a Ball-Tree whose leaves additionally store, per point, the
*ball* and *cone* structures relative to the leaf center ``c``:

* ``r_x = ||x - c||`` — used by the point-level ball bound (Corollary 1),
  with leaf points sorted by descending ``r_x`` so the bound prunes the
  remaining points in a batch;
* ``||x|| cos(phi_x)`` and ``||x|| sin(phi_x)`` — used by the tighter
  point-level cone bound (Theorem 3).

Internal-node centers are computed from the children's centers via the
linear property of the centroid (Lemma 1); per-node center norms are
precomputed at build time because the cone bound's query decomposition
needs ``||c||`` on every leaf visit.

Search is executed by the shared
:class:`~repro.engine.traversal.TraversalEngine`, which evaluates all
center inner products of a query in one vectorized pass and dispatches the
BC leaf scan (Algorithm 5's ``ScanWithPruning``).  The engine keeps
reporting the paper's logical inner-product cost: with Lemma 2's
collaborative strategy (Theorem 5) one inner product per expanded node,
without it two — which is what the ``collaborative_ip`` flag controls.
Batches are answered by the block traversal kernel
(:mod:`repro.engine.block`): whole query blocks descend the tree together
with shared per-leaf bound evaluation, bit-identical — results and work
counters — to per-query search (the sequential scan mode is the one
configuration that stays per-query; see :meth:`_batch_kernel_veto`).

The ablation variants of Figure 8 are exposed through the
``use_ball_bound`` / ``use_cone_bound`` constructor flags:

=================  ==========================  ==========================
Paper name          ``use_ball_bound``           ``use_cone_bound``
=================  ==========================  ==========================
BC-Tree             True                         True
BC-Tree-wo-B        False                        True
BC-Tree-wo-C        True                         False
BC-Tree-wo-BC       False                        False
=================  ==========================  ==========================
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.ball_tree import BallTree
from repro.core.policies import BranchPreference
from repro.core.tree_base import build_tree
from repro.engine.traversal import TraversalEngine


class BCTree(BallTree):
    """BC-Tree index for point-to-hyperplane nearest neighbor search.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf (``N0``; default 100).
    branch_preference:
        Child-visit ordering (center preference by default).
    use_ball_bound, use_cone_bound:
        Enable / disable the two point-level lower bounds (Figure 8
        ablation); both enabled by default.
    collaborative_ip:
        Account center inner products with Lemma 2's O(1) derivation of the
        right child's inner product (Theorem 5); enabled by default.  The
        engine computes all inner products in one vectorized pass either
        way, so the flag only changes the work counters, never the results.
    scan_mode:
        ``"vectorized"`` (default) evaluates the point-level bounds for the
        whole leaf in NumPy batch operations using the pruning threshold at
        leaf entry; ``"sequential"`` follows Algorithm 5 point by point and
        tightens the threshold inside the leaf.  Both return identical
        results; the sequential mode verifies slightly fewer candidates at a
        much higher interpreter cost, and exists for fidelity tests.
    random_state, augment, normalize_queries:
        See :class:`~repro.core.ball_tree.BallTree`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BCTree
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(500, 16))
    >>> query = rng.normal(size=17)
    >>> tree = BCTree(leaf_size=32, random_state=0).fit(data)
    >>> result = tree.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        branch_preference=BranchPreference.CENTER,
        use_ball_bound: bool = True,
        use_cone_bound: bool = True,
        collaborative_ip: bool = True,
        scan_mode: str = "vectorized",
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
        storage=None,
    ) -> None:
        super().__init__(
            leaf_size,
            branch_preference=branch_preference,
            random_state=random_state,
            augment=augment,
            normalize_queries=normalize_queries,
            storage=storage,
        )
        if scan_mode not in ("vectorized", "sequential"):
            raise ValueError(
                f"scan_mode must be 'vectorized' or 'sequential', got {scan_mode!r}"
            )
        self.use_ball_bound = bool(use_ball_bound)
        self.use_cone_bound = bool(use_cone_bound)
        self.collaborative_ip = bool(collaborative_ip)
        self.scan_mode = scan_mode
        # Per-point leaf structures, aligned with the tree's ``perm`` order.
        self.point_radius: Optional[np.ndarray] = None
        self.point_cos: Optional[np.ndarray] = None
        self.point_sin: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        """Algorithm 4: Ball-Tree construction plus leaf ball/cone structures."""
        self.tree = build_tree(
            points,
            self.leaf_size,
            rng=self.random_state,
            centers_from_children=True,
        )
        tree = self.tree
        n = points.shape[0]
        self.point_radius = np.zeros(n, dtype=np.float64)
        self.point_cos = np.zeros(n, dtype=np.float64)
        self.point_sin = np.zeros(n, dtype=np.float64)

        for node in range(tree.num_nodes):
            if not tree.is_leaf(node):
                continue
            start, end = tree.start[node], tree.end[node]
            indices = tree.perm[start:end]
            leaf_points = points[indices]
            center = tree.centers[node]
            center_norm = float(tree.center_norms[node])

            radii = np.linalg.norm(leaf_points - center, axis=1)
            # Sort leaf points by descending r_x (Algorithm 4 line 9) so the
            # point-level ball bound prunes the tail of the leaf in a batch.
            order = np.argsort(-radii, kind="stable")
            indices = indices[order]
            leaf_points = leaf_points[order]
            radii = radii[order]
            tree.perm[start:end] = indices

            norms = np.linalg.norm(leaf_points, axis=1)
            if center_norm > 0.0:
                x_cos = (leaf_points @ center) / center_norm
            else:
                x_cos = np.zeros_like(norms)
            x_sin = np.sqrt(np.maximum(norms * norms - x_cos * x_cos, 0.0))

            self.point_radius[start:end] = radii
            self.point_cos[start:end] = x_cos
            self.point_sin[start:end] = x_sin

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        arrays = list(super()._payload_arrays())
        for extra in (self.point_radius, self.point_cos, self.point_sin):
            if extra is not None:
                arrays.append(extra)
        return arrays

    # ---------------------------------------------------------------- search

    def _make_engine(self) -> TraversalEngine:
        return TraversalEngine.for_bc_tree(self)

    def _engine_signature(self) -> tuple:
        return (
            self.use_ball_bound,
            self.use_cone_bound,
            self.collaborative_ip,
            self.scan_mode,
        )

    def _batch_kernel_veto(self, **search_kwargs) -> Optional[str]:
        """Block-kernel coverage for BC-Tree search options.

        In addition to Ball-Tree's exclusions (profiling, unknown options),
        the sequential scan mode stays per-query on the exact path:
        Algorithm 5's point-by-point leaf scan tightens the threshold
        *inside* a leaf, which the block kernel's whole-leaf events cannot
        reproduce.  The vectorized scan mode — with or without the
        ball/cone bounds, the collaborative inner-product accounting, or a
        candidate budget — is fully covered.  The fast mode
        (``exact=False``) never evaluates point-level bounds, so the scan
        mode is irrelevant there and the fast kernel covers both modes.
        """
        if search_kwargs.get("exact", True) and self.scan_mode == "sequential":
            return (
                "scan_mode='sequential' tightens the threshold inside each "
                "leaf and must run per-query"
            )
        return super()._batch_kernel_veto(**search_kwargs)

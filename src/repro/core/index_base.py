"""Common interface shared by every P2HNNS index in the library.

All indexes — Ball-Tree, BC-Tree, KD-Tree, the linear scan, and the NH/FH
hashing baselines — implement the same small contract:

* ``fit(points)`` builds the index over augmented points ``x = (p; 1)``.
* ``search(query, k, ...)`` returns a :class:`~repro.core.results.SearchResult`
  holding the top-k nearest points to the hyperplane together with work
  counters.
* ``batch_search(queries, k, n_jobs=...)`` runs many queries through the
  query-execution engine (:mod:`repro.engine`) and returns a
  :class:`~repro.engine.batch.BatchSearchResult` — a sequence of per-query
  results plus pooled statistics and batch timing.  Results are
  bit-identical to sequential ``search`` for every ``n_jobs``.
* ``index_size_bytes()`` reports the memory footprint of the index payload
  (Table III's "Size" column).
* ``save(path)`` / ``load(path)`` persist the fitted index.

The base class also owns the augmented data matrix, dimension checks,
indexing-time bookkeeping, and the cached
:class:`~repro.engine.traversal.TraversalEngine` for tree indexes, so
concrete indexes only implement ``_build``, ``_search_one`` and (for tree
indexes) ``_make_engine``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.distances import augment_points, is_augmented, normalize_query
from repro.core.results import SearchResult
from repro.engine.batch import BatchSearchResult, execute_batch
from repro.utils.persistence import dump_index_payload, load_typed_index
from repro.utils.timing import Timer
from repro.utils.validation import check_points_matrix, check_query_vector


class NotFittedError(RuntimeError):
    """Raised when ``search`` is called before ``fit``."""


class P2HIndex:
    """Abstract base class for point-to-hyperplane nearest-neighbor indexes.

    Parameters
    ----------
    augment:
        If True (default), ``fit`` treats its input as *raw* points in
        ``R^{d-1}`` and appends the constant 1 coordinate.  If False, the
        input is assumed to already be augmented (last column all ones).
    normalize_queries:
        If True (default), queries are rescaled so the hyperplane normal has
        unit norm before searching; the returned distances are then true
        geometric P2H distances.
    """

    def __init__(self, *, augment: bool = True, normalize_queries: bool = True):
        self.augment = bool(augment)
        self.normalize_queries = bool(normalize_queries)
        self._points: Optional[np.ndarray] = None
        self.num_points: int = 0
        self.dim: int = 0
        self.indexing_seconds: float = 0.0
        self._engine_cache = None
        # Bumped by every (re)fit; long-lived process pools (the
        # repro.api.Searcher session) compare it to detect that their
        # pickled worker-side snapshot of the index went stale.
        self._mutation_version: int = 0

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray) -> "P2HIndex":
        """Build the index over ``points``.

        Parameters
        ----------
        points:
            Shape ``(n, d-1)`` raw points (default) or ``(n, d)`` augmented
            points when ``augment=False``.

        Returns
        -------
        P2HIndex
            ``self``, to allow ``Index(...).fit(data)`` chaining.
        """
        pts = check_points_matrix(points, name="points")
        if self.augment:
            pts = augment_points(pts)
        elif not is_augmented(pts):
            raise ValueError(
                "augment=False requires points whose last column is all ones"
            )
        self._points = pts
        self.num_points, self.dim = pts.shape
        self._engine_cache = None
        self._mutation_version = getattr(self, "_mutation_version", 0) + 1
        with Timer() as timer:
            self._build(pts)
        self.indexing_seconds = timer.elapsed
        return self

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """Return the top-``k`` nearest points to the hyperplane ``query``.

        Parameters
        ----------
        query:
            Hyperplane coefficients of shape ``(d,)`` — the first ``d-1``
            entries are the normal vector, the last is the offset.
        k:
            Number of neighbors to return.
        kwargs:
            Index-specific search options (e.g. ``candidate_fraction`` for
            the trees, ``max_candidates`` for the hashing baselines).
        """
        self._check_fitted()
        q = check_query_vector(query, expected_dim=self.dim, name="query")
        if self.normalize_queries:
            q = normalize_query(q)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        with Timer() as timer:
            result = self._search_one(q, k, **kwargs)
        result.stats.elapsed_seconds = timer.elapsed
        return result

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        **kwargs,
    ) -> BatchSearchResult:
        """Answer every row of ``queries`` through the execution engine.

        Parameters
        ----------
        queries:
            Query matrix of shape ``(q, d)`` (a single vector is promoted).
        k:
            Top-k size for every query.
        n_jobs:
            Worker-pool size; ``None`` or 1 runs inline.
        executor:
            ``"thread"`` (default) or ``"process"`` — see
            :func:`repro.engine.batch.execute_batch`.
        kwargs:
            Index-specific search options, forwarded to every query.

        Returns
        -------
        BatchSearchResult
            Sequence of per-query results (bit-identical to sequential
            :meth:`search` calls) plus pooled stats and wall/CPU timing.

        Notes
        -----
        Indexes that expose a vectorized ``_batch_kernel`` (the hashing
        baselines) are answered in whole-block kernel calls instead of
        per-query dispatch; the engine chunks the block across the worker
        pool, and results stay bit-identical for every ``n_jobs`` because
        the kernels are per-row independent.
        """
        return execute_batch(
            self, queries, k, n_jobs=n_jobs, executor=executor, **kwargs
        )

    def index_size_bytes(self) -> int:
        """Memory footprint of the index payload in bytes.

        The base implementation counts only what subclasses report via
        :meth:`_payload_arrays`; the raw data matrix is *not* counted, to
        mirror the paper's "index size" (which excludes the data set itself).
        """
        self._check_fitted()
        return int(sum(arr.nbytes for arr in self._payload_arrays()))

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Serialize the fitted index (including data) to ``path``.

        The file is a versioned payload (see
        :mod:`repro.utils.persistence`) stamped with the declarative spec
        dictionary when the index was built through
        :func:`repro.api.build_index`, so :func:`repro.api.load_index` can
        reconstruct any family without knowing the class up front.  The
        header also records the storage dtype of the persisted data matrix
        (readable via :func:`repro.api.saved_storage_dtype` without
        unpickling the index).
        """
        self._check_fitted()
        dump_index_payload(
            path,
            self,
            spec=getattr(self, "_api_spec", None),
            storage_dtype=str(self._points.dtype),
        )

    @classmethod
    def load(cls, path) -> "P2HIndex":
        """Load an index previously stored with :meth:`save`."""
        return load_typed_index(path, cls)

    # --------------------------------------------------------------- helpers

    def _prepare_query_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Normalize a pre-validated query block exactly as :meth:`search` does.

        Vectorized batch kernels (indexes exposing ``_batch_kernel``; see
        :func:`repro.engine.batch.execute_batch`) run whole query blocks
        without going through :meth:`search`.  The engine has already
        promoted and finiteness-checked the block with
        :func:`~repro.utils.validation.check_query_matrix` (validating
        again here would re-scan the whole matrix per chunk), so only the
        index-specific dimension check remains, and normalization runs the
        same per-row kernel :meth:`search` uses — keeping blocked execution
        bit-identical to sequential calls.
        """
        self._check_fitted()
        if matrix.shape[1] != self.dim:
            raise ValueError(
                f"query must have dimension {self.dim}, got {matrix.shape[1]}"
            )
        if not self.normalize_queries or matrix.shape[0] == 0:
            return matrix
        return np.vstack([normalize_query(row) for row in matrix])

    @property
    def points(self) -> np.ndarray:
        """The augmented data matrix the index was fitted on."""
        self._check_fitted()
        return self._points

    def _check_fitted(self) -> None:
        if self._points is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    def _engine(self):
        """The cached :class:`TraversalEngine`, built lazily after ``fit``.

        The cache is keyed on :meth:`_engine_signature`, so mutating a
        search-relevant public attribute (e.g. BC-Tree's bound flags)
        after a search transparently rebuilds the engine instead of
        silently keeping the stale configuration.
        """
        signature = self._engine_signature()
        cached = self._engine_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        engine = self._make_engine()
        self._engine_cache = (signature, engine)
        return engine

    def _engine_signature(self) -> tuple:
        """Search-relevant attributes the engine bakes in at build time."""
        return ()

    def __getstate__(self):
        # The engine is a derived structure (plain-list mirrors of the tree
        # arrays); drop it from pickles and rebuild lazily after load.
        state = dict(self.__dict__)
        state["_engine_cache"] = None
        return state

    # ------------------------------------------------------------- overrides

    def _build(self, points: np.ndarray) -> None:
        """Build index structures over the augmented ``points``."""
        raise NotImplementedError

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Answer a single normalized query."""
        raise NotImplementedError

    def _make_engine(self):
        """Build the traversal engine (tree indexes only)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not use a traversal engine"
        )

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        """Arrays that constitute the index payload (for size accounting)."""
        return ()

"""Common interface shared by every P2HNNS index in the library.

All indexes — Ball-Tree, BC-Tree, KD-Tree, the linear scan, and the NH/FH
hashing baselines — implement the same small contract:

* ``fit(points)`` builds the index over augmented points ``x = (p; 1)``.
* ``search(query, k, ...)`` returns a :class:`~repro.core.results.SearchResult`
  holding the top-k nearest points to the hyperplane together with work
  counters.
* ``batch_search(queries, k, ...)`` runs many queries and returns a list of
  results.
* ``index_size_bytes()`` reports the memory footprint of the index payload
  (Table III's "Size" column).
* ``save(path)`` / ``load(path)`` persist the fitted index.

The base class also owns the augmented data matrix, dimension checks, and
indexing-time bookkeeping, so concrete indexes only implement ``_build`` and
``_search_one``.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distances import augment_points, is_augmented, normalize_query
from repro.core.results import SearchResult
from repro.utils.timing import Timer
from repro.utils.validation import check_points_matrix, check_query_vector


class NotFittedError(RuntimeError):
    """Raised when ``search`` is called before ``fit``."""


class P2HIndex:
    """Abstract base class for point-to-hyperplane nearest-neighbor indexes.

    Parameters
    ----------
    augment:
        If True (default), ``fit`` treats its input as *raw* points in
        ``R^{d-1}`` and appends the constant 1 coordinate.  If False, the
        input is assumed to already be augmented (last column all ones).
    normalize_queries:
        If True (default), queries are rescaled so the hyperplane normal has
        unit norm before searching; the returned distances are then true
        geometric P2H distances.
    """

    def __init__(self, *, augment: bool = True, normalize_queries: bool = True):
        self.augment = bool(augment)
        self.normalize_queries = bool(normalize_queries)
        self._points: Optional[np.ndarray] = None
        self.num_points: int = 0
        self.dim: int = 0
        self.indexing_seconds: float = 0.0

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray) -> "P2HIndex":
        """Build the index over ``points``.

        Parameters
        ----------
        points:
            Shape ``(n, d-1)`` raw points (default) or ``(n, d)`` augmented
            points when ``augment=False``.

        Returns
        -------
        P2HIndex
            ``self``, to allow ``Index(...).fit(data)`` chaining.
        """
        pts = check_points_matrix(points, name="points")
        if self.augment:
            pts = augment_points(pts)
        elif not is_augmented(pts):
            raise ValueError(
                "augment=False requires points whose last column is all ones"
            )
        self._points = pts
        self.num_points, self.dim = pts.shape
        with Timer() as timer:
            self._build(pts)
        self.indexing_seconds = timer.elapsed
        return self

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """Return the top-``k`` nearest points to the hyperplane ``query``.

        Parameters
        ----------
        query:
            Hyperplane coefficients of shape ``(d,)`` — the first ``d-1``
            entries are the normal vector, the last is the offset.
        k:
            Number of neighbors to return.
        kwargs:
            Index-specific search options (e.g. ``candidate_fraction`` for
            the trees, ``max_candidates`` for the hashing baselines).
        """
        self._check_fitted()
        q = check_query_vector(query, expected_dim=self.dim, name="query")
        if self.normalize_queries:
            q = normalize_query(q)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        with Timer() as timer:
            result = self._search_one(q, k, **kwargs)
        result.stats.elapsed_seconds = timer.elapsed
        return result

    def batch_search(
        self, queries: np.ndarray, k: int = 1, **kwargs
    ) -> List[SearchResult]:
        """Run :meth:`search` for every row of ``queries``."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.search(q, k=k, **kwargs) for q in queries]

    def index_size_bytes(self) -> int:
        """Memory footprint of the index payload in bytes.

        The base implementation counts only what subclasses report via
        :meth:`_payload_arrays`; the raw data matrix is *not* counted, to
        mirror the paper's "index size" (which excludes the data set itself).
        """
        self._check_fitted()
        return int(sum(arr.nbytes for arr in self._payload_arrays()))

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Serialize the fitted index (including data) to ``path``."""
        self._check_fitted()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "P2HIndex":
        """Load an index previously stored with :meth:`save`."""
        with Path(path).open("rb") as handle:
            obj = pickle.load(handle)
        if not isinstance(obj, cls):
            raise TypeError(
                f"{path} does not contain a {cls.__name__} (got {type(obj).__name__})"
            )
        return obj

    # --------------------------------------------------------------- helpers

    @property
    def points(self) -> np.ndarray:
        """The augmented data matrix the index was fitted on."""
        self._check_fitted()
        return self._points

    def _check_fitted(self) -> None:
        if self._points is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    # ------------------------------------------------------------- overrides

    def _build(self, points: np.ndarray) -> None:
        """Build index structures over the augmented ``points``."""
        raise NotImplementedError

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Answer a single normalized query."""
        raise NotImplementedError

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        """Arrays that constitute the index payload (for size accounting)."""
        return ()

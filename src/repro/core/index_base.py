"""Common interface shared by every P2HNNS index in the library.

All indexes — Ball-Tree, BC-Tree, KD-Tree, the linear scan, and the NH/FH
hashing baselines — implement the same small contract:

* ``fit(points)`` builds the index over augmented points ``x = (p; 1)``.
* ``search(query, k, ...)`` returns a :class:`~repro.core.results.SearchResult`
  holding the top-k nearest points to the hyperplane together with work
  counters.
* ``batch_search(queries, k, n_jobs=...)`` runs many queries through the
  query-execution engine (:mod:`repro.engine`) and returns a
  :class:`~repro.engine.batch.BatchSearchResult` — a sequence of per-query
  results plus pooled statistics and batch timing.  Results are
  bit-identical to sequential ``search`` for every ``n_jobs``.
* ``index_size_bytes()`` reports the memory footprint of the index payload
  (Table III's "Size" column).
* ``save(path)`` / ``load(path)`` persist the fitted index.

The base class also owns the augmented data matrix, dimension checks,
indexing-time bookkeeping, and the cached
:class:`~repro.engine.traversal.TraversalEngine` for tree indexes, so
concrete indexes only implement ``_build``, ``_search_one`` and (for tree
indexes) ``_make_engine``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.distances import augment_points, is_augmented, normalize_query
from repro.core.results import SearchResult
from repro.engine.batch import BatchSearchResult, execute_batch
from repro.storage import StorageSpec
from repro.utils.persistence import dump_index_payload, load_typed_index
from repro.utils.timing import Timer
from repro.utils.validation import check_points_matrix, check_query_vector


class NotFittedError(RuntimeError):
    """Raised when ``search`` is called before ``fit``."""


class P2HIndex:
    """Abstract base class for point-to-hyperplane nearest-neighbor indexes.

    Parameters
    ----------
    augment:
        If True (default), ``fit`` treats its input as *raw* points in
        ``R^{d-1}`` and appends the constant 1 coordinate.  If False, the
        input is assumed to already be augmented (last column all ones).
    normalize_queries:
        If True (default), queries are rescaled so the hyperplane normal has
        unit norm before searching; the returned distances are then true
        geometric P2H distances.
    storage:
        Where the large point arrays live — anything
        :meth:`repro.storage.StorageSpec.coerce` accepts (``None``/"ram"
        for the default resident float64, ``"float32"`` for a
        reduced-precision resident copy, ``"mmap"`` for memory-mapped
        ``.npy`` files).  Tree geometry always stays resident.
    """

    def __init__(
        self,
        *,
        augment: bool = True,
        normalize_queries: bool = True,
        storage=None,
    ):
        self.augment = bool(augment)
        self.normalize_queries = bool(normalize_queries)
        self.storage = StorageSpec.coerce(storage)
        self._store = None
        self._fitted = False
        self._points: Optional[np.ndarray] = None
        self.num_points: int = 0
        self.dim: int = 0
        self.indexing_seconds: float = 0.0
        self._engine_cache = None
        # Bumped by every (re)fit; long-lived process pools (the
        # repro.api.Searcher session) compare it to detect that their
        # pickled worker-side snapshot of the index went stale.
        self._mutation_version: int = 0

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray) -> "P2HIndex":
        """Build the index over ``points``.

        Parameters
        ----------
        points:
            Shape ``(n, d-1)`` raw points (default) or ``(n, d)`` augmented
            points when ``augment=False``.

        Returns
        -------
        P2HIndex
            ``self``, to allow ``Index(...).fit(data)`` chaining.
        """
        pts = check_points_matrix(points, name="points")
        if self.augment:
            pts = augment_points(pts)
        elif not is_augmented(pts):
            raise ValueError(
                "augment=False requires points whose last column is all ones"
            )
        self._points = pts
        self._fitted = True
        self.num_points, self.dim = pts.shape
        self._engine_cache = None
        self._mutation_version = getattr(self, "_mutation_version", 0) + 1
        with Timer() as timer:
            self._build(pts)
            self._store_points(pts)
        self.indexing_seconds = timer.elapsed
        return self

    def search(self, query: np.ndarray, k: int = 1, **kwargs) -> SearchResult:
        """Return the top-``k`` nearest points to the hyperplane ``query``.

        Parameters
        ----------
        query:
            Hyperplane coefficients of shape ``(d,)`` — the first ``d-1``
            entries are the normal vector, the last is the offset.
        k:
            Number of neighbors to return.
        kwargs:
            Index-specific search options (e.g. ``candidate_fraction`` for
            the trees, ``max_candidates`` for the hashing baselines).
        """
        self._check_fitted()
        q = check_query_vector(query, expected_dim=self.dim, name="query")
        if self.normalize_queries:
            q = normalize_query(q)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        with Timer() as timer:
            result = self._search_one(q, k, **kwargs)
        result.stats.elapsed_seconds = timer.elapsed
        return result

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        **kwargs,
    ) -> BatchSearchResult:
        """Answer every row of ``queries`` through the execution engine.

        Parameters
        ----------
        queries:
            Query matrix of shape ``(q, d)`` (a single vector is promoted).
        k:
            Top-k size for every query.
        n_jobs:
            Worker-pool size; ``None`` or 1 runs inline.
        executor:
            ``"thread"`` (default) or ``"process"`` — see
            :func:`repro.engine.batch.execute_batch`.
        kwargs:
            Index-specific search options, forwarded to every query.

        Returns
        -------
        BatchSearchResult
            Sequence of per-query results (bit-identical to sequential
            :meth:`search` calls) plus pooled stats and wall/CPU timing.

        Notes
        -----
        Indexes that expose a vectorized ``_batch_kernel`` (the hashing
        baselines) are answered in whole-block kernel calls instead of
        per-query dispatch; the engine chunks the block across the worker
        pool, and results stay bit-identical for every ``n_jobs`` because
        the kernels are per-row independent.
        """
        return execute_batch(
            self, queries, k, n_jobs=n_jobs, executor=executor, **kwargs
        )

    def index_size_bytes(self) -> int:
        """Memory footprint of the index payload in bytes.

        The base implementation counts only what subclasses report via
        :meth:`_payload_arrays`; the raw data matrix is *not* counted, to
        mirror the paper's "index size" (which excludes the data set itself).
        """
        self._check_fitted()
        return int(sum(arr.nbytes for arr in self._payload_arrays()))

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Serialize the fitted index (including data) to ``path``.

        The file is a versioned payload (see
        :mod:`repro.utils.persistence`) stamped with the declarative spec
        dictionary when the index was built through
        :func:`repro.api.build_index`, so :func:`repro.api.load_index` can
        reconstruct any family without knowing the class up front.  The
        header also records the storage dtype of the persisted data matrix
        (readable via :func:`repro.api.saved_storage_dtype` without
        unpickling the index).
        """
        self._check_fitted()
        store = self._ensure_store()
        dump_index_payload(
            path,
            self,
            spec=getattr(self, "_api_spec", None),
            storage_dtype=store.dtype,
            storage=store.to_header(),
            stores=self._array_stores(),
        )

    @classmethod
    def load(cls, path) -> "P2HIndex":
        """Load an index previously stored with :meth:`save`."""
        return load_typed_index(path, cls)

    # --------------------------------------------------------------- helpers

    def _prepare_query_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Normalize a pre-validated query block exactly as :meth:`search` does.

        Vectorized batch kernels (indexes exposing ``_batch_kernel``; see
        :func:`repro.engine.batch.execute_batch`) run whole query blocks
        without going through :meth:`search`.  The engine has already
        promoted and finiteness-checked the block with
        :func:`~repro.utils.validation.check_query_matrix` (validating
        again here would re-scan the whole matrix per chunk), so only the
        index-specific dimension check remains, and normalization runs the
        same per-row kernel :meth:`search` uses — keeping blocked execution
        bit-identical to sequential calls.
        """
        self._check_fitted()
        if matrix.shape[1] != self.dim:
            raise ValueError(
                f"query must have dimension {self.dim}, got {matrix.shape[1]}"
            )
        if not self.normalize_queries or matrix.shape[0] == 0:
            return matrix
        return np.vstack([normalize_query(row) for row in matrix])

    @property
    def points(self) -> np.ndarray:
        """The augmented data matrix the index was fitted on.

        Tree families keep only the leaf-ordered copy resident, so this
        property *reconstructs* the un-permuted matrix on demand (and does
        not cache it — callers on the hot path go through the engine's
        leaf-ordered arrays instead).  The dtype is the storage dtype.
        """
        self._check_fitted()
        if self._points is not None:
            return self._points
        return self._rebuild_points()

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    # --------------------------------------------------------------- storage

    def _store_points(self, pts: np.ndarray) -> None:
        """Hand the fitted point matrix to the index's array store.

        The default keeps the (possibly dtype-cast) matrix addressable as
        ``self._points`` — an identity operation for the default resident
        float64 spec.  Tree families override this to keep only the
        leaf-ordered copy (see :class:`LeafStoredPointsMixin`).
        """
        self._store = self.storage.create_store()
        self._points = self._store.put("points", pts)

    def _rebuild_points(self) -> np.ndarray:
        """Reconstruct the un-permuted matrix when it is not resident."""
        raise NotFittedError(
            f"{type(self).__name__} must be fitted before it can be used"
        )

    def _ensure_store(self):
        """The index's array store, creating one for legacy pickles."""
        if self._store is None:
            self._store = self.storage.create_store()
            self._adopt_legacy_arrays(self._store)
        return self._store

    def _adopt_legacy_arrays(self, store) -> None:
        """Move pre-storage-layer resident arrays into a fresh store."""
        if self._points is not None:
            self._points = store.put("points", self._points)

    def _array_stores(self):
        """Every store backing this index (composites override to recurse)."""
        store = self._store
        return [store] if store is not None else []

    def to_storage(self, storage) -> "P2HIndex":
        """Migrate the fitted point arrays to a different storage backend.

        Used by :class:`repro.api.Searcher` to convert a resident index to
        mmap before spawning process workers (workers then re-open the map
        instead of receiving pickled array bytes).  Returns ``self``.
        Note a float32 store cannot recover float64 precision — migrating
        back up-casts the already-rounded values.
        """
        self._check_fitted()
        spec = StorageSpec.coerce(storage)
        old = self._ensure_store()
        if spec == old.spec:
            return self
        new = spec.create_store()
        new.copy_from(old, old.names())
        self._store = new
        self.storage = spec
        if self._points is not None and "points" in new:
            self._points = new.get("points")
        # The engine holds references into the old store's arrays.
        self._engine_cache = None
        return self

    def _engine(self):
        """The cached :class:`TraversalEngine`, built lazily after ``fit``.

        The cache is keyed on :meth:`_engine_signature`, so mutating a
        search-relevant public attribute (e.g. BC-Tree's bound flags)
        after a search transparently rebuilds the engine instead of
        silently keeping the stale configuration.
        """
        signature = self._engine_signature()
        cached = self._engine_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        engine = self._make_engine()
        self._engine_cache = (signature, engine)
        return engine

    def _engine_signature(self) -> tuple:
        """Search-relevant attributes the engine bakes in at build time."""
        return ()

    def __getstate__(self):
        # The engine is a derived structure (plain-list mirrors of the tree
        # arrays); drop it from pickles and rebuild lazily after load.
        state = dict(self.__dict__)
        state["_engine_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Pre-storage-layer pickles: fittedness was "has a point matrix",
        # storage was implicitly resident float64, and no store existed.
        if "_fitted" not in state:
            self._fitted = state.get("_points") is not None
        if "storage" not in state:
            self.storage = StorageSpec()
        if "_store" not in state:
            self._store = None

    # ------------------------------------------------------------- overrides

    def _build(self, points: np.ndarray) -> None:
        """Build index structures over the augmented ``points``."""
        raise NotImplementedError

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Answer a single normalized query."""
        raise NotImplementedError

    def _make_engine(self):
        """Build the traversal engine (tree indexes only)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not use a traversal engine"
        )

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        """Arrays that constitute the index payload (for size accounting)."""
        return ()


class LeafStoredPointsMixin:
    """Point storage for tree indexes: one leaf-ordered resident copy.

    Tree traversal only ever reads leaf-contiguous slices, so the
    leaf-ordered copy (``points[tree.perm]``) is the *only* copy these
    indexes keep — stored under ``"points_leaf"`` in the index's array
    store.  The un-permuted matrix is reconstructed lazily by the
    :attr:`~P2HIndex.points` property (used by the sequential-scan fidelity
    paths, ``NodeView`` inspection, and composite rebuilds), never cached,
    so a fitted tree index holds one ``(n, d)`` array resident instead of
    the historical two.

    Mix in *before* :class:`P2HIndex` so the ``_store_points`` override
    wins.
    """

    #: Build-time memory budget in MiB; set by :func:`repro.api.build_index`
    #: for specs carrying ``memory_budget_mb``.  ``fit`` honors it by
    #: delegating to :meth:`fit_chunked`.
    memory_budget_mb: Optional[float] = None

    def _store_points(self, pts: np.ndarray) -> None:
        self._store = self.storage.create_store()
        self._store.put("points_leaf", pts[self.tree.perm])
        self._points = None

    def fit(self, points):
        """Build the index; a set :attr:`memory_budget_mb` routes the build
        through the memory-bounded chunked path (same fitted contract —
        bit-identical to the resident build whenever the budget covers the
        data)."""
        if self.memory_budget_mb is not None:
            return self.fit_chunked(
                points, memory_budget_mb=self.memory_budget_mb
            )
        return super().fit(points)

    def fit_chunked(self, points, *, memory_budget_mb: float = 256.0):
        """Build this index under a row-memory budget (out-of-core path).

        ``points`` may be a path to a ``.npy`` file (recommended — rows
        are then read with plain file I/O and never become resident), a
        2-D array, or any row source
        :func:`repro.storage.as_row_source` accepts.  With a budget of at
        least ``n`` rows this is bit-identical to :meth:`~P2HIndex.fit`;
        see :func:`repro.core.chunked.chunked_fit`.
        """
        from repro.core.chunked import chunked_fit

        return chunked_fit(self, points, memory_budget_mb=memory_budget_mb)

    def _adopt_legacy_arrays(self, store) -> None:
        if self._points is not None:
            store.put("points_leaf", self._points[self.tree.perm])
            self._points = None

    def _leaf_points(self) -> np.ndarray:
        """The leaf-ordered point matrix the traversal engine reads."""
        self._check_fitted()
        return self._ensure_store().get("points_leaf")

    def _rebuild_points(self) -> np.ndarray:
        leaf = self._leaf_points()
        perm = self.tree.perm
        inverse = np.empty(perm.shape[0], dtype=np.int64)
        inverse[perm] = np.arange(perm.shape[0], dtype=np.int64)
        return np.asarray(leaf)[inverse]

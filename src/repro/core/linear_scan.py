"""Exhaustive linear scan — the exact baseline and ground-truth generator.

The paper calls this "a trivial solution ... computationally prohibitive";
it is nevertheless indispensable both as a correctness oracle for every
other index and as the recall denominator in the evaluation harness.

Batched queries have a fully vectorized path: one ``|P @ Q.T|`` matmul for
the whole batch plus a vectorized per-column top-k selection (see
:meth:`LinearScan.batch_search`).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.distances import normalize_query
from repro.core.index_base import P2HIndex
from repro.core.results import SearchResult, SearchStats
from repro.engine.batch import BatchSearchResult, pool_results
from repro.utils.validation import check_query_vector


class LinearScan(P2HIndex):
    """Brute-force P2HNNS by scanning every point.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import LinearScan
    >>> data = np.eye(4)
    >>> scan = LinearScan().fit(data)
    >>> result = scan.search(np.array([1.0, 0.0, 0.0, 0.0, -0.5]), k=2)
    >>> len(result)
    2
    """

    def _build(self, points: np.ndarray) -> None:
        # Nothing to build: the "index" is the data matrix itself.
        return None

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        return ()

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"LinearScan.search got unexpected options: {unexpected}")
        distances = np.abs(self._points @ query)
        stats = SearchStats(candidates_verified=self.num_points)
        order = _top_k_ascending(distances, k)
        return SearchResult(
            indices=order.astype(np.int64),
            distances=distances[order],
            stats=stats,
        )

    #: Thread-executor Searcher sessions route through this override so the
    #: batch-level-only ``vectorized`` flag keeps working under a session.
    _session_native_batch = True

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        vectorized: bool = False,
        **kwargs,
    ) -> BatchSearchResult:
        """Answer every row of ``queries``.

        Parameters
        ----------
        vectorized:
            When False (default) every query runs the exact per-query code
            path of :meth:`search` (dispatched through the engine's worker
            pool), so results are bit-identical to sequential search.  When
            True, the whole batch is answered with a single
            ``|points @ Q.T|`` matmul followed by a vectorized per-column
            top-k selection — substantially faster for large batches, but
            the BLAS GEMM kernel may differ from the per-query GEMV in the
            last ulp, so distances are only equal to sequential search up
            to floating-point rounding.
        n_jobs, executor, kwargs:
            See :meth:`P2HIndex.batch_search`; ignored by the vectorized
            path (which is a single BLAS call).
        """
        if not vectorized:
            return super().batch_search(
                queries, k, n_jobs=n_jobs, executor=executor, **kwargs
            )
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"LinearScan.search got unexpected options: {unexpected}")
        self._check_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)

        wall_tic = time.perf_counter()
        cpu_tic = time.process_time()
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        rows = [
            check_query_vector(row, expected_dim=self.dim, name="query")
            for row in matrix
        ]
        if self.normalize_queries:
            rows = [normalize_query(row) for row in rows]
        normalized = (
            np.vstack(rows) if rows else np.empty((0, self.dim), dtype=np.float64)
        )

        results = []
        if normalized.shape[0]:
            # One GEMM for the whole batch: scores[i, j] = |<p_i, q_j>|.
            scores = np.abs(self._points @ normalized.T)
            if k < scores.shape[0]:
                top = np.argpartition(scores, k - 1, axis=0)[:k]
            else:
                top = np.broadcast_to(
                    np.arange(scores.shape[0])[:, None], scores.shape
                )
            for column in range(scores.shape[1]):
                candidates = top[:, column]
                column_scores = scores[candidates, column]
                order = np.argsort(column_scores, kind="stable")
                results.append(
                    SearchResult(
                        indices=candidates[order].astype(np.int64),
                        distances=column_scores[order],
                        stats=SearchStats(candidates_verified=self.num_points),
                    )
                )
        wall = time.perf_counter() - wall_tic
        cpu = time.process_time() - cpu_tic
        if results:
            # The matmul answers all queries at once; attribute the wall
            # time evenly so per-query timings stay meaningful.
            share = wall / len(results)
            for result in results:
                result.stats.elapsed_seconds = share
        return pool_results(results, wall_seconds=wall, cpu_seconds=cpu, n_jobs=1)


def _top_k_ascending(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k smallest distances, sorted ascending (stable)."""
    if k >= distances.shape[0]:
        order = np.argsort(distances, kind="stable")
    else:
        # Partial selection then sort only the k smallest.
        top = np.argpartition(distances, k)[:k]
        order = top[np.argsort(distances[top], kind="stable")]
    return order[:k]

"""Exhaustive linear scan — the exact baseline and ground-truth generator.

The paper calls this "a trivial solution ... computationally prohibitive";
it is nevertheless indispensable both as a correctness oracle for every
other index and as the recall denominator in the evaluation harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.index_base import P2HIndex
from repro.core.results import SearchResult, SearchStats


class LinearScan(P2HIndex):
    """Brute-force P2HNNS by scanning every point.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import LinearScan
    >>> data = np.eye(4)
    >>> scan = LinearScan().fit(data)
    >>> result = scan.search(np.array([1.0, 0.0, 0.0, 0.0, -0.5]), k=2)
    >>> len(result)
    2
    """

    def _build(self, points: np.ndarray) -> None:
        # Nothing to build: the "index" is the data matrix itself.
        return None

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        return ()

    def _search_one(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"LinearScan.search got unexpected options: {unexpected}")
        distances = np.abs(self._points @ query)
        stats = SearchStats(candidates_verified=self.num_points)
        if k >= distances.shape[0]:
            order = np.argsort(distances, kind="stable")
        else:
            # Partial selection then sort only the k smallest.
            top = np.argpartition(distances, k)[:k]
            order = top[np.argsort(distances[top], kind="stable")]
        order = order[:k]
        return SearchResult(
            indices=order.astype(np.int64),
            distances=distances[order],
            stats=stats,
        )

"""Branch preference policies for the depth-first tree traversal.

The paper (Section III-C, Figure 7) compares two ways of ordering the two
children of an internal node during search:

* ``CENTER`` — visit first the child whose center has the smaller absolute
  inner product with the query (Algorithm 3 lines 10-16).  This is the
  default and the uniformly better choice in the paper's experiments.
* ``LOWER_BOUND`` — visit first the child with the smaller node-level ball
  bound.  Near the root the radii are large so both bounds are often 0 and
  the order degenerates, which is why this policy loses.
"""

from __future__ import annotations

from enum import Enum


class BranchPreference(str, Enum):
    """How to order the two children of an internal node during search."""

    CENTER = "center"
    LOWER_BOUND = "lower_bound"

    @classmethod
    def coerce(cls, value) -> "BranchPreference":
        """Accept an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown branch preference {value!r}; expected one of: {valid}"
            ) from exc

"""Search results, statistics counters, and the bounded top-k collector."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class SearchStats:
    """Machine-independent work counters for a single query.

    These counters are what the Figure 10 time profile and the
    collaborative-inner-product ablation (Theorem 5) are measured from:

    * ``nodes_visited`` — tree nodes whose bound was evaluated.
    * ``center_inner_products`` — full O(d) inner products between the query
      and node centers (the cost Lemma 2 cuts roughly in half).
    * ``candidates_verified`` — points whose exact ``|<x, q>|`` was computed.
    * ``points_pruned_ball`` / ``points_pruned_cone`` — leaf points skipped by
      the point-level ball / cone bound (BC-Tree only).
    * ``leaves_scanned`` — leaf nodes reached.
    * ``buckets_probed`` — hash buckets probed (hashing baselines only).
    """

    nodes_visited: int = 0
    center_inner_products: int = 0
    candidates_verified: int = 0
    points_pruned_ball: int = 0
    points_pruned_cone: int = 0
    leaves_scanned: int = 0
    buckets_probed: int = 0
    elapsed_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's counters into this one."""
        self.nodes_visited += other.nodes_visited
        self.center_inner_products += other.center_inner_products
        self.candidates_verified += other.candidates_verified
        self.points_pruned_ball += other.points_pruned_ball
        self.points_pruned_cone += other.points_pruned_cone
        self.leaves_scanned += other.leaves_scanned
        self.buckets_probed += other.buckets_probed
        self.elapsed_seconds += other.elapsed_seconds
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a flat dictionary (for reports / JSON)."""
        out = {
            "nodes_visited": self.nodes_visited,
            "center_inner_products": self.center_inner_products,
            "candidates_verified": self.candidates_verified,
            "points_pruned_ball": self.points_pruned_ball,
            "points_pruned_cone": self.points_pruned_cone,
            "leaves_scanned": self.leaves_scanned,
            "buckets_probed": self.buckets_probed,
            "elapsed_seconds": self.elapsed_seconds,
        }
        for stage, seconds in self.stage_seconds.items():
            out[f"stage_{stage}_seconds"] = seconds
        return out


@dataclass
class SearchResult:
    """Top-k P2HNNS result for one query.

    Attributes
    ----------
    indices:
        Indices (into the fitted point matrix) of the k nearest points to the
        hyperplane, ordered by increasing P2H distance.
    distances:
        The matching ``|<x, q>|`` values.
    stats:
        Work counters for the query.
    """

    indices: np.ndarray
    distances: np.ndarray
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def as_tuples(self) -> List[Tuple[int, float]]:
        """Return ``[(index, distance), ...]`` pairs."""
        return [
            (int(i), float(d)) for i, d in zip(self.indices, self.distances)
        ]


class TopKCollector:
    """Bounded max-heap of the k smallest distances seen so far.

    The paper's search keeps ``q.bm`` (best match) and ``q.lambda`` (current
    minimum ``|<x, q>|``); for top-k search the natural generalization is a
    max-heap of size k whose root is the running pruning threshold
    ``lambda`` (the k-th smallest distance so far, or ``+inf`` while fewer
    than k candidates have been seen).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        # Heap of (-distance, index) so the root is the largest distance kept.
        self._heap: List[Tuple[float, int]] = []

    @property
    def threshold(self) -> float:
        """Current pruning threshold ``lambda`` (k-th best distance)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, index: int, distance: float) -> bool:
        """Offer a candidate; returns True if it was kept."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, index))
            return True
        if distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-distance, index))
            return True
        return False

    def offer_batch(self, indices: np.ndarray, distances: np.ndarray) -> None:
        """Offer a batch of candidates (vectorized fast path).

        Only candidates strictly below the current threshold can enter the
        heap, and of those only the k smallest matter, so the batch is cut
        down with one comparison (and, when still large, one
        ``argpartition``) before the per-element pushes.  This is the one
        batch-offer implementation — the engine's leaf scans and the
        partitioned/dynamic merge paths all route through it.
        """
        if len(indices) == 0:
            return
        threshold = self.threshold
        if not np.isinf(threshold):
            mask = distances < threshold
            if not mask.any():
                return
            indices = indices[mask]
            distances = distances[mask]
        if distances.shape[0] > self.k:
            keep = np.argpartition(distances, self.k - 1)[: self.k]
            indices = indices[keep]
            distances = distances[keep]
        order = np.argsort(distances, kind="stable")
        for pos in order:
            self.offer(int(indices[pos]), float(distances[pos]))

    def to_result(self, stats: SearchStats = None) -> SearchResult:
        """Materialize the collected candidates as a sorted :class:`SearchResult`."""
        if not self._heap:
            return SearchResult(
                indices=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float64),
                stats=stats or SearchStats(),
            )
        pairs = sorted(((-neg, idx) for neg, idx in self._heap))
        distances = np.array([p[0] for p in pairs], dtype=np.float64)
        indices = np.array([p[1] for p in pairs], dtype=np.int64)
        return SearchResult(
            indices=indices, distances=distances, stats=stats or SearchStats()
        )

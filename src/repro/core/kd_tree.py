"""KD-Tree baseline with an axis-aligned bounding-box bound for P2HNNS.

Section III-A of the paper argues that bounding-box trees (KD-Tree, R-Tree)
are less attractive for the P2H distance because the box bound has to reason
about the sign of the inner product per dimension.  The bound itself is
nevertheless well defined — the inner product over a box ranges over an
interval computable in O(d) (see :func:`repro.core.bounds.kd_box_bound`) —
so we implement the KD-Tree as an additional comparison point and ablation
for the "why Ball-Tree?" design discussion.

The tree uses the classic median split on the widest dimension and the same
search API as the other indexes (branch-and-bound with a candidate budget).
Traversal runs on the shared :class:`~repro.engine.traversal.TraversalEngine`
(stack frontier, children ordered by the smaller box bound), which
evaluates the box bound for every node in one vectorized pass per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.index_base import LeafStoredPointsMixin, P2HIndex
from repro.core.results import SearchResult
from repro.engine.block import attach_block_timing
from repro.engine.budget import resolve_budget
from repro.engine.traversal import TraversalEngine
from repro.utils.validation import check_positive_int

NO_CHILD = -1


@dataclass
class _KDArrays:
    """Flat representation of the KD-Tree."""

    lower: np.ndarray        # (num_nodes, d) box lower corners
    upper: np.ndarray        # (num_nodes, d) box upper corners
    start: np.ndarray
    end: np.ndarray
    left_child: np.ndarray
    right_child: np.ndarray
    perm: np.ndarray

    def payload_arrays(self):
        return (
            self.lower,
            self.upper,
            self.start,
            self.end,
            self.left_child,
            self.right_child,
            self.perm,
        )


def build_kd_tree(points: np.ndarray, leaf_size: int) -> _KDArrays:
    """Build the KD-Tree structure over augmented ``points``.

    Median split on the widest dimension; a node whose points are all
    identical stays a leaf regardless of size.  Exposed as a function so
    the chunked build path (:mod:`repro.core.chunked`) can graft
    in-budget subtrees.
    """
    n, d = points.shape
    perm = np.arange(n, dtype=np.int64)
    lowers: List[np.ndarray] = []
    uppers: List[np.ndarray] = []
    starts: List[int] = []
    ends: List[int] = []
    lefts: List[int] = []
    rights: List[int] = []

    def allocate(start: int, end: int) -> int:
        node_id = len(starts)
        lowers.append(np.zeros(d))
        uppers.append(np.zeros(d))
        starts.append(start)
        ends.append(end)
        lefts.append(NO_CHILD)
        rights.append(NO_CHILD)
        return node_id

    root = allocate(0, n)
    stack = [root]
    while stack:
        node = stack.pop()
        start, end = starts[node], ends[node]
        node_points = points[perm[start:end]]
        lowers[node] = node_points.min(axis=0)
        uppers[node] = node_points.max(axis=0)
        size = end - start
        if size <= leaf_size:
            continue
        spreads = uppers[node] - lowers[node]
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            continue  # all points identical: keep as a leaf
        values = node_points[:, axis]
        order = np.argsort(values, kind="stable")
        perm[start:end] = perm[start:end][order]
        mid = start + size // 2
        left = allocate(start, mid)
        right = allocate(mid, end)
        lefts[node] = left
        rights[node] = right
        stack.append(right)
        stack.append(left)

    return _KDArrays(
        lower=np.asarray(lowers),
        upper=np.asarray(uppers),
        start=np.asarray(starts, dtype=np.int64),
        end=np.asarray(ends, dtype=np.int64),
        left_child=np.asarray(lefts, dtype=np.int64),
        right_child=np.asarray(rights, dtype=np.int64),
        perm=perm,
    )


class KDTree(LeafStoredPointsMixin, P2HIndex):
    """KD-Tree with a box interval bound on ``|<x, q>|``.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf.
    augment, normalize_queries, storage:
        See :class:`~repro.core.index_base.P2HIndex`.
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        augment: bool = True,
        normalize_queries: bool = True,
        storage=None,
    ) -> None:
        super().__init__(
            augment=augment,
            normalize_queries=normalize_queries,
            storage=storage,
        )
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.tree: Optional[_KDArrays] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        self.tree = build_kd_tree(points, self.leaf_size)

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        if self.tree is None:
            return ()
        return self.tree.payload_arrays()

    @property
    def num_nodes(self) -> int:
        self._check_fitted()
        return int(self.tree.start.shape[0])

    # ---------------------------------------------------------------- search

    def _make_engine(self) -> TraversalEngine:
        return TraversalEngine.for_kd_tree(self)

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
        exact: bool = True,
        dtype: Optional[str] = None,
        **kwargs,
    ) -> SearchResult:
        if kwargs:
            unexpected = ", ".join(sorted(kwargs))
            raise TypeError(f"KDTree.search got unexpected options: {unexpected}")
        budget = resolve_budget(candidate_fraction, max_candidates, self.num_points)
        if not exact:
            # repro: allow[REP102] exact=False hand-off to the fast tier;
            # the literal names its default storage dtype.
            return self._engine().fast_kernel(dtype or "float32").search_block(
                query[None, :], k, budget=budget
            )[0]
        if dtype is not None:
            raise ValueError(
                "dtype selects the fast mode's storage precision and "
                "requires exact=False"
            )
        return self._engine().search(query, k, budget=budget, order="depth_first")

    # ---------------------------------------------------------- batch kernel

    def _batch_kernel_veto(
        self,
        candidate_fraction=None,
        max_candidates=None,
        exact: bool = True,
        dtype=None,
        **unknown,
    ) -> Optional[str]:
        """Why the block traversal kernel cannot cover these search options.

        Candidate budgets are covered (the kernel replays the per-query
        budget check before every pop, and the KD box bound's lazy per-node
        evaluation is bit-identical to the vectorized pass, so no value
        strategy split is needed); unknown options decline the kernel so
        per-query ``search`` raises its usual ``TypeError``.
        """
        if unknown:
            return "unknown search options: " + ", ".join(sorted(unknown))
        return None

    def _batch_kernel(
        self,
        queries: np.ndarray,
        k: int,
        *,
        candidate_fraction=None,
        max_candidates=None,
        exact: bool = True,
        dtype=None,
    ) -> List[SearchResult]:
        """Answer a whole query block with the block traversal kernel.

        Dispatched only for options :meth:`_batch_kernel_veto` accepts;
        the signature still names every supported option so explicitly
        passing its default works exactly like per-query ``search``.
        With ``exact=True`` (default) results and work counters are
        bit-identical to per-query :meth:`search` (see
        :mod:`repro.engine.block`), including under
        ``candidate_fraction`` / ``max_candidates`` budgets; with
        ``exact=False`` the block runs on the approximate fast GEMM
        kernel (:mod:`repro.engine.fast`).
        """
        wall_tic = time.perf_counter()
        matrix = self._prepare_query_matrix(queries)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        budget = resolve_budget(
            candidate_fraction, max_candidates, self.num_points
        )
        if exact:
            if dtype is not None:
                raise ValueError(
                    "dtype selects the fast mode's storage precision and "
                    "requires exact=False"
                )
            kernel = self._engine().block_kernel()
        else:
            # repro: allow[REP102] exact=False hand-off to the fast tier;
            # the literal names its default storage dtype.
            kernel = self._engine().fast_kernel(dtype or "float32")
        results = kernel.search_block(matrix, k, budget=budget)
        attach_block_timing(results, time.perf_counter() - wall_tic)
        return results

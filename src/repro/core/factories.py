"""Picklable sub-index factories for the composite indexes.

:class:`~repro.core.dynamic.DynamicP2HIndex` and
:class:`~repro.core.partitioned.PartitionedP2HIndex` both take a
zero-argument ``index_factory`` callable and historically defaulted to a
``lambda`` — which made the composites unpicklable, so they were the only
index families without ``save``/``load``.  The default factory is now this
module-level class; custom factories remain free-form callables, but must
be picklable for persistence to work (the API layer's
``repro.api.specs.SpecIndexFactory`` is the declarative, always-picklable
option).
"""

from __future__ import annotations

from repro.core.bc_tree import BCTree


class DefaultBCTreeFactory:
    """Zero-argument factory building the library-default sub-index.

    Equivalent to ``lambda: BCTree(random_state=random_state)`` but
    picklable, so composites using the default factory round-trip through
    ``save``/``load``.
    """

    def __init__(self, random_state=None) -> None:
        self.random_state = random_state

    def __call__(self) -> BCTree:
        return BCTree(random_state=self.random_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DefaultBCTreeFactory(random_state={self.random_state!r})"

"""Core P2HNNS indexes: Ball-Tree, BC-Tree, linear scan, KD-Tree baseline.

Besides the static paper indexes, the subpackage also provides the
extensions built on the same tree machinery: best-first traversal
(:mod:`repro.core.best_first`), maximum inner product search
(:mod:`repro.core.mips`), an insert/delete-capable wrapper
(:mod:`repro.core.dynamic`), and a sharded index
(:mod:`repro.core.partitioned`).
"""

from repro.core.ball_tree import BallTree
from repro.core.bc_tree import BCTree
from repro.core.best_first import BestFirstSearcher, best_first_search
from repro.core.distances import (
    augment_points,
    normalize_query,
    p2h_distance,
    p2h_distance_raw,
)
from repro.core.dynamic import DynamicP2HIndex
from repro.core.index_base import P2HIndex
from repro.core.kd_tree import KDTree
from repro.core.linear_scan import LinearScan
from repro.core.mips import BallTreeMIPS, linear_mips, linear_mips_batch
from repro.core.partitioned import PartitionedP2HIndex, partition_indices
from repro.core.policies import BranchPreference
from repro.core.results import SearchResult, SearchStats
from repro.core.rp_tree import RPTree

__all__ = [
    "BallTree",
    "BCTree",
    "KDTree",
    "RPTree",
    "LinearScan",
    "P2HIndex",
    "BranchPreference",
    "SearchResult",
    "SearchStats",
    "BestFirstSearcher",
    "best_first_search",
    "BallTreeMIPS",
    "linear_mips",
    "linear_mips_batch",
    "DynamicP2HIndex",
    "PartitionedP2HIndex",
    "partition_indices",
    "augment_points",
    "normalize_query",
    "p2h_distance",
    "p2h_distance_raw",
]

"""Partitioned P2HNNS index for scalable / sharded search.

Section III-A of the paper motivates Ball-Tree partly because "as it is a
space partition method, we can leverage it to split massive data sets into
fine granularities for scalable and distributed P2HNNS".  This module is
that layer: it shards the data into disjoint partitions, builds one static
index (Ball-Tree, BC-Tree, or any other :class:`P2HIndex`) per shard, and
answers queries by searching every shard and merging the per-shard top-k
lists.

Three partitioning strategies are provided:

* ``"contiguous"`` — split the input in order into equal-size blocks
  (mirrors range-sharding of a stored data set).
* ``"round_robin"`` — deal points to shards one by one (balances any
  ordering bias in the input).
* ``"ball"`` — recursively apply the paper's own seed-grow split until the
  requested number of shards is reached, so each shard is spatially
  coherent and its index prunes better (the "fine granularities" the paper
  refers to).

Exactness: with no per-shard budget the merged result equals the result of
a single index over the full data, because every shard searches exhaustively
within its own points.  Per-shard candidate budgets turn the structure into
an approximate index whose recall/time trade-off is measured by
``benchmarks/bench_partitioned_scaling.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.factories import DefaultBCTreeFactory
from repro.core.index_base import NotFittedError, P2HIndex
from repro.core.results import SearchResult, SearchStats, TopKCollector
from repro.core.splits import seed_grow_split
from repro.engine.batch import BatchSearchResult, pool_results
from repro.storage import combined_storage_header
from repro.utils.persistence import dump_index_payload, load_typed_index
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_points_matrix, check_positive_int

PARTITION_STRATEGIES = ("contiguous", "round_robin", "ball")


def effective_pool_size(shard_batches: Sequence[BatchSearchResult]) -> int:
    """Worker-pool size a sharded batch actually ran with.

    Each shard reports the pool its own ``batch_search`` used; normally the
    values agree (same request, same CPU cap), but a custom sub-index may
    cap differently, so the batch-level number is the *largest* pool any
    shard ran with — the peak parallelism of the call.  Defaults to 1 when
    there are no shard batches at all (previously this indexed
    ``shard_batches[0]`` unconditionally).
    """
    return max((batch.n_jobs for batch in shard_batches), default=1)


def merge_shard_row(
    shard_rows: Sequence[SearchResult],
    shard_point_ids: Sequence[np.ndarray],
    k: int,
) -> TopKCollector:
    """Reference merge of one query's per-shard top-k lists (shard order).

    This is the loop the per-query :meth:`PartitionedP2HIndex.search` runs
    and the semantics the vectorized batch merge must reproduce: offer each
    shard's (already sorted) row to one bounded collector, in shard order,
    so ties at the k-th distance resolve by the collector's arrival/eviction
    rules.  The batch path falls back to it for the rare rows with a tie at
    the top-k boundary, where a plain stable selection could keep a
    different tied id than the collector's heap does.
    """
    collector = TopKCollector(k)
    for result, ids in zip(shard_rows, shard_point_ids):
        collector.offer_batch(ids[result.indices], result.distances)
    return collector


def merge_shard_batches(
    shard_batches: Sequence[BatchSearchResult],
    shard_point_ids: Sequence[np.ndarray],
    k: int,
    num_queries: int,
    stats_list: Optional[List[SearchStats]] = None,
) -> List[SearchResult]:
    """Vectorized per-query merge of per-shard top-k batches.

    The block counterpart of :func:`merge_shard_row`: given one
    :class:`BatchSearchResult` per shard (every shard answered the same
    ``num_queries`` queries) and the shard-local→global id maps, produce
    the merged global top-``k`` row per query — **bit-identical** to
    offering each shard's row to a :class:`TopKCollector` in shard order.
    Exposed at module level so the distributed scatter-gather router
    (:mod:`repro.cluster`) merges gathered shard responses with the exact
    computation :meth:`PartitionedP2HIndex.batch_search` runs in process.

    Replaces the per-row ``TopKCollector``-over-all-shards loop (which
    dominated wall time for large batches with many shards) with block
    operations over the shard-concatenated distance matrix:

    * each shard row is already sorted ascending by ``(distance, id)``
      and holds at most ``k`` entries, so the collector's arrival order
      equals concatenation order — one *stable* argsort by distance
      over the concatenated row reproduces it exactly;
    * when the k-th and (k+1)-th sorted distances differ, the kept set
      is exactly "every entry at or below the k-th distance" for both
      the collector and the stable selection, and the final ascending
      ``(distance, id)`` order is what ``TopKCollector.to_result``
      emits;
    * only rows with an exact distance tie *at the boundary* can
      diverge (the collector's heap evicts the smallest-id tied entry,
      not the latest-arrived); those rare rows fall back to the
      reference collector merge.

    ``stats_list`` carries one pre-merged :class:`SearchStats` per query;
    when None (the router's case — gathered responses carry no work
    counters), fresh empty stats are attached instead.
    """
    if stats_list is None:
        # Per-row pooled stats: same shard-order merge the per-query
        # loop performs.
        stats_list = []
        for row in range(num_queries):
            stats = SearchStats()
            for batch in shard_batches:
                stats.merge(batch[row].stats)
            stats_list.append(stats)

    dist_blocks = []
    id_blocks = []
    for batch, ids in zip(shard_batches, shard_point_ids):
        distances = batch.distances_matrix(fill=np.inf)
        if distances.shape[1] == 0:
            continue
        # Pad with local id 0 (the shard is non-empty); padded slots
        # carry an infinite distance and are dropped after selection.
        local = batch.indices_matrix(fill=0)
        dist_blocks.append(distances)
        id_blocks.append(ids[local])
    if not dist_blocks:
        return [
            SearchResult(
                indices=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float64),
                stats=stats,
            )
            for stats in stats_list
        ]

    dist_cat = np.concatenate(dist_blocks, axis=1)
    id_cat = np.concatenate(id_blocks, axis=1)
    width = dist_cat.shape[1]
    order = np.argsort(dist_cat, axis=1, kind="stable")
    dist_sorted = np.take_along_axis(dist_cat, order, axis=1)
    id_sorted = np.take_along_axis(id_cat, order, axis=1)
    kk = min(k, width)
    if width > kk:
        boundary_tie = dist_sorted[:, kk - 1] == dist_sorted[:, kk]
        boundary_tie &= np.isfinite(dist_sorted[:, kk - 1])
    else:
        boundary_tie = np.zeros(num_queries, dtype=bool)
    top_d = dist_sorted[:, :kk]
    top_i = id_sorted[:, :kk]
    # Final output order is ascending (distance, id): two stable
    # argsorts (id first, then distance) are a per-row lexsort.
    id_order = np.argsort(top_i, axis=1, kind="stable")
    top_d = np.take_along_axis(top_d, id_order, axis=1)
    top_i = np.take_along_axis(top_i, id_order, axis=1)
    d_order = np.argsort(top_d, axis=1, kind="stable")
    top_d = np.take_along_axis(top_d, d_order, axis=1)
    top_i = np.take_along_axis(top_i, d_order, axis=1)
    lengths = np.isfinite(top_d).sum(axis=1).tolist()

    results: List[SearchResult] = []
    for row in range(num_queries):
        if boundary_tie[row]:
            collector = merge_shard_row(
                [batch[row] for batch in shard_batches],
                shard_point_ids,
                k,
            )
            results.append(collector.to_result(stats_list[row]))
            continue
        length = lengths[row]
        results.append(
            SearchResult(
                indices=np.ascontiguousarray(top_i[row, :length]),
                distances=np.ascontiguousarray(top_d[row, :length]),
                stats=stats_list[row],
            )
        )
    return results


def partition_indices(
    points: np.ndarray,
    num_partitions: int,
    strategy: str = "ball",
    *,
    rng=None,
) -> List[np.ndarray]:
    """Split ``range(n)`` into ``num_partitions`` disjoint index arrays.

    Parameters
    ----------
    points:
        The raw data matrix ``(n, d-1)``; only used by the ``"ball"``
        strategy (the other two depend only on ``n``).
    num_partitions:
        Number of shards; must be between 1 and ``n``.
    strategy:
        One of ``"contiguous"``, ``"round_robin"``, ``"ball"``.
    rng:
        Seed or generator for the ``"ball"`` strategy's seed-grow splits.
    """
    pts = check_points_matrix(points, name="points")
    n = pts.shape[0]
    num_partitions = check_positive_int(num_partitions, name="num_partitions")
    if num_partitions > n:
        raise ValueError(
            f"num_partitions={num_partitions} exceeds the number of points ({n})"
        )
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
        )

    all_indices = np.arange(n, dtype=np.int64)
    if strategy == "contiguous":
        return [np.ascontiguousarray(chunk) for chunk in np.array_split(all_indices, num_partitions)]
    if strategy == "round_robin":
        return [all_indices[offset::num_partitions].copy() for offset in range(num_partitions)]

    # "ball": repeatedly split the largest shard with the seed-grow rule.
    rng = ensure_rng(rng)
    shards: List[np.ndarray] = [all_indices]
    while len(shards) < num_partitions:
        largest = max(range(len(shards)), key=lambda i: shards[i].size)
        shard = shards.pop(largest)
        if shard.size < 2:
            # Cannot split further; fall back to peeling one point off.
            shards.append(shard[:1])
            shards.append(shard[1:])
            continue
        left_rows, right_rows = seed_grow_split(pts[shard], rng)
        shards.append(shard[left_rows])
        shards.append(shard[right_rows])
    return shards


class PartitionedP2HIndex:
    """Sharded P2HNNS index: one sub-index per partition, merged top-k.

    Parameters
    ----------
    num_partitions:
        Number of shards to build (default 4).
    index_factory:
        Zero-argument callable returning a fresh, unfitted static index for
        each shard (default: ``BCTree()``).
    strategy:
        Partitioning strategy (see :func:`partition_indices`).
    random_state:
        Seed for the ``"ball"`` strategy and the default sub-index factory.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.partitioned import PartitionedP2HIndex
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(600, 16))
    >>> index = PartitionedP2HIndex(num_partitions=4, random_state=0).fit(data)
    >>> result = index.search(rng.normal(size=17), k=10)
    >>> len(result)
    10
    """

    #: Tells thread-executor Searcher sessions to route through this
    #: class's own ``batch_search`` (per-shard engine batches + the
    #: vectorized block merge) instead of generic per-query dispatch —
    #: the generic path would re-serialize the merge loop this class
    #: vectorized.  Process sessions keep the session pool: per-call
    #: per-shard process pools are exactly the spawn cost they amortize.
    _session_native_batch = True

    def __init__(
        self,
        num_partitions: int = 4,
        *,
        index_factory: Optional[Callable[[], P2HIndex]] = None,
        strategy: str = "ball",
        random_state=None,
    ) -> None:
        self.num_partitions = check_positive_int(num_partitions, name="num_partitions")
        if strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {PARTITION_STRATEGIES}"
            )
        if index_factory is None:
            index_factory = DefaultBCTreeFactory(random_state)
        self.index_factory = index_factory
        self.strategy = strategy
        self.random_state = random_state

        self.shards: List[P2HIndex] = []
        self.shard_point_ids: List[np.ndarray] = []
        self.num_points: int = 0
        self.dim: int = 0
        self.indexing_seconds: float = 0.0
        # Bumped by every (re)fit; see P2HIndex for the session contract.
        self._mutation_version: int = 0

    # ------------------------------------------------------------------ API

    def fit(self, points: np.ndarray) -> "PartitionedP2HIndex":
        """Partition ``points`` and build one sub-index per shard."""
        pts = check_points_matrix(points, name="points")
        self.num_points = pts.shape[0]
        self.dim = pts.shape[1] + 1
        self._mutation_version += 1
        with Timer() as timer:
            shard_ids = partition_indices(
                pts, self.num_partitions, self.strategy, rng=self.random_state
            )
            self.shard_point_ids = shard_ids
            self.shards = []
            for ids in shard_ids:
                sub_index = self.index_factory()
                sub_index.fit(pts[ids])
                self.shards.append(sub_index)
        self.indexing_seconds = timer.elapsed
        return self

    def search(self, query: np.ndarray, k: int = 1, **search_kwargs) -> SearchResult:
        """Search every shard and merge the per-shard top-k lists."""
        self._check_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)

        stats = SearchStats()
        collector = TopKCollector(k)
        with Timer() as timer:
            for sub_index, ids in zip(self.shards, self.shard_point_ids):
                shard_k = min(k, int(ids.size))
                result = sub_index.search(query, k=shard_k, **search_kwargs)
                stats.merge(result.stats)
                global_ids = ids[result.indices]
                collector.offer_batch(global_ids, result.distances)
        merged = collector.to_result(stats)
        merged.stats.elapsed_seconds = timer.elapsed
        return merged

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        executor: str = "thread",
        **search_kwargs,
    ) -> BatchSearchResult:
        """Answer every row of ``queries``, fanning the batch out per shard.

        Each shard answers the *whole* batch through its own engine-backed
        ``batch_search`` (with the shard's worker pool), and the per-shard
        top-k lists are then merged per query with one vectorized block
        merge (a stable sort over the shard-concatenated rows — the same
        selection the per-query collector makes, with a per-row collector
        fallback for ties at the top-k boundary), so the results are
        bit-identical to sequential per-query search for every ``n_jobs``.
        """
        self._check_fitted()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))

        wall_tic = time.perf_counter()
        cpu_tic = time.process_time()
        shard_batches = []
        for sub_index, ids in zip(self.shards, self.shard_point_ids):
            shard_k = min(k, int(ids.size))
            shard_batches.append(
                sub_index.batch_search(
                    matrix,
                    k=shard_k,
                    n_jobs=n_jobs,
                    executor=executor,
                    **search_kwargs,
                )
            )
        results = self._merge_shard_batches(shard_batches, k, matrix.shape[0])
        wall = time.perf_counter() - wall_tic
        cpu = time.process_time() - cpu_tic
        return pool_results(
            results,
            wall_seconds=wall,
            cpu_seconds=cpu,
            # Report the pool size the shards actually ran with (the
            # request is capped at the machine's CPU count downstream).
            n_jobs=effective_pool_size(shard_batches),
        )

    def _merge_shard_batches(
        self,
        shard_batches: List[BatchSearchResult],
        k: int,
        num_queries: int,
    ) -> List[SearchResult]:
        """Delegate to the module-level :func:`merge_shard_batches`.

        Kept as a method so the class reads top-to-bottom; the body lives
        at module level because the scatter-gather router must run the
        *same* merge over gathered shard responses.
        """
        return merge_shard_batches(
            shard_batches, self.shard_point_ids, k, num_queries
        )

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Persist the fitted sharded index (all shards plus id maps).

        Uses the same versioned payload format as every static index
        (:mod:`repro.utils.persistence`); ``index_factory`` is pickled
        along, so custom ``lambda`` factories raise here — use the default
        factory or :class:`repro.api.specs.SpecIndexFactory` instead.
        """
        self._check_fitted()
        stores = self._array_stores()
        header = combined_storage_header(stores)
        dump_index_payload(
            path,
            self,
            spec=getattr(self, "_api_spec", None),
            storage_dtype=header["dtype"] if header else "float64",
            storage=header,
            stores=stores,
            # Shard layout in the header frame: `describe_index` / `repro
            # info` and the cluster payload splitter read the partition
            # count and per-shard sizes without unpickling the index.
            shards={"count": len(self.shards), "sizes": self.shard_sizes()},
        )

    def _array_stores(self):
        """Every shard's stores, in shard order (one sidecar slot each)."""
        stores = []
        for shard in self.shards:
            stores.extend(shard._array_stores())
        return stores

    def to_storage(self, storage) -> "PartitionedP2HIndex":
        """Migrate every shard's point arrays to the given storage spec."""
        for shard in self.shards:
            shard.to_storage(storage)
        return self

    @classmethod
    def load(cls, path) -> "PartitionedP2HIndex":
        """Load a partitioned index previously stored with :meth:`save`."""
        return load_typed_index(path, cls)

    def index_size_bytes(self) -> int:
        """Total payload size across all shards (plus the id maps)."""
        self._check_fitted()
        total = sum(shard.index_size_bytes() for shard in self.shards)
        total += sum(ids.nbytes for ids in self.shard_point_ids)
        return int(total)

    def shard_sizes(self) -> List[int]:
        """Number of points per shard."""
        self._check_fitted()
        return [int(ids.size) for ids in self.shard_point_ids]

    def indexing_report(self) -> Dict[str, float]:
        """Summary of the sharded build (for benchmarks)."""
        self._check_fitted()
        sizes = self.shard_sizes()
        return {
            "num_partitions": len(self.shards),
            "indexing_seconds": self.indexing_seconds,
            "index_size_bytes": float(self.index_size_bytes()),
            "min_shard": float(min(sizes)),
            "max_shard": float(max(sizes)),
        }

    # ------------------------------------------------------------ internals

    def _check_fitted(self) -> None:
        if not self.shards:
            raise NotFittedError(
                "PartitionedP2HIndex must be fitted before it can be used"
            )

"""Lower bounds on the absolute inner product ``|<x, q>|``.

These are the three bounds the paper derives:

* :func:`node_ball_bound` — Theorem 2, the node-level ball bound used by
  both Ball-Tree and BC-Tree to prune whole subtrees.
* :func:`point_ball_bound` — Corollary 1, the point-level ball bound used by
  BC-Tree leaves for batch pruning (data sorted by descending per-point
  radius).
* :func:`point_cone_bound` — Theorem 3, the tighter point-level cone bound
  used by BC-Tree leaves for per-point pruning.

All functions accept either scalars or NumPy arrays for the per-point
quantities so the BC-Tree leaf scan can evaluate them in a single
vectorized pass.
"""

from __future__ import annotations

import numpy as np


def node_ball_bound(ip_center: float, query_norm: float, radius: float) -> float:
    """Node-level ball bound (Theorem 2).

    For a node with center ``c`` and radius ``r`` and a query ``q``,

        min_{x in N} |<x, q>|  >=  max(|<q, c>| - ||q|| * r, 0).

    Parameters
    ----------
    ip_center:
        The inner product ``<q, c>`` (signed).
    query_norm:
        ``||q||``.
    radius:
        The node radius ``r`` (max distance from the center to any point).

    Returns
    -------
    float
        The lower bound (always non-negative).
    """
    return max(abs(ip_center) - query_norm * radius, 0.0)


def point_ball_bound(
    ip_center: float, query_norm: float, point_radius
) -> np.ndarray:
    """Point-level ball bound (Corollary 1).

    Each leaf point ``x`` lies in a virtual ball centered at the leaf center
    ``c`` with radius ``r_x = ||x - c||``, hence

        |<x, q>|  >=  max(|<q, c>| - ||q|| * r_x, 0).

    Parameters
    ----------
    ip_center:
        ``<q, c>`` for the leaf center ``c``.
    query_norm:
        ``||q||``.
    point_radius:
        Scalar or array of per-point radii ``r_x``.

    Returns
    -------
    numpy.ndarray or float
        The bound, elementwise over ``point_radius``.
    """
    bound = np.abs(ip_center) - query_norm * np.asarray(point_radius, dtype=np.float64)
    return np.maximum(bound, 0.0)


def query_angle_terms(
    ip_center: float, query_norm: float, center_norm: float
) -> tuple:
    """Decompose the query against the leaf-center direction.

    Returns ``(q_cos, q_sin)`` where ``q_cos = ||q|| cos(theta)`` and
    ``q_sin = ||q|| sin(theta)`` with ``theta`` the angle between the query
    and the leaf center.  These are the two O(1)-per-leaf quantities needed
    by the cone bound (the paper computes them at the top of
    ``ScanWithPruning``, Algorithm 5 line 19).

    Numerical care: ``q_sin`` is clamped at zero when rounding makes the
    radicand slightly negative.
    """
    if center_norm <= 0.0:
        # Degenerate leaf whose center is the origin: the angle is undefined,
        # treat the query as orthogonal so the cone bound falls back to 0.
        return 0.0, query_norm
    q_cos = ip_center / center_norm
    radicand = query_norm * query_norm - q_cos * q_cos
    q_sin = float(np.sqrt(radicand)) if radicand > 0.0 else 0.0
    return float(q_cos), q_sin


def point_cone_bound(q_cos: float, q_sin: float, x_cos, x_sin) -> np.ndarray:
    """Point-level cone bound (Theorem 3).

    Each leaf point ``x`` is described by its cone structure relative to the
    leaf center ``c``: ``x_cos = ||x|| cos(phi_x)`` and
    ``x_sin = ||x|| sin(phi_x)`` where ``phi_x`` is the angle between ``x``
    and ``c``.  Together with the query terms from
    :func:`query_angle_terms` the bound is

        |<x, q>| >=  ||x|| ||q|| cos(theta + phi_x)   if that cosine > 0 and
                                                      cos(theta) > 0 and
                                                      cos(phi_x) > 0
                  >= -||x|| ||q|| cos(|theta - phi_x|) if that cosine < 0
                  >=  0                                 otherwise

    using the expansions
    ``||x|| ||q|| cos(theta + phi_x) = q_cos * x_cos - q_sin * x_sin`` and
    ``||x|| ||q|| cos(|theta - phi_x|) = q_cos * x_cos + q_sin * x_sin``.

    Parameters
    ----------
    q_cos, q_sin:
        ``||q|| cos(theta)`` and ``||q|| sin(theta)`` (``q_sin >= 0``).
    x_cos, x_sin:
        Scalars or arrays ``||x|| cos(phi_x)`` and ``||x|| sin(phi_x)``
        (``x_sin >= 0``).

    Returns
    -------
    numpy.ndarray or float
        The bound, elementwise.
    """
    x_cos = np.asarray(x_cos, dtype=np.float64)
    x_sin = np.asarray(x_sin, dtype=np.float64)
    cos_sum = q_cos * x_cos - q_sin * x_sin
    cos_diff = q_cos * x_cos + q_sin * x_sin

    bound = np.zeros_like(cos_sum)
    # Case 1: cos(theta + phi) > 0 with both cos(theta) > 0 and cos(phi) > 0.
    case1 = (cos_sum > 0.0) & (q_cos > 0.0) & (x_cos > 0.0)
    # Case 2: cos(|theta - phi|) < 0.
    case2 = (~case1) & (cos_diff < 0.0)
    bound = np.where(case1, cos_sum, bound)
    bound = np.where(case2, -cos_diff, bound)
    if np.ndim(x_cos) == 0:
        return float(bound)
    return bound


def query_angle_terms_block(
    ip_center: np.ndarray, query_norms: np.ndarray, center_norm: float
) -> tuple:
    """:func:`query_angle_terms` for a block of queries against one center.

    Every operation is the elementwise image of the scalar function —
    division, the radicand, and the guarded square root — so each row of
    the result is bit-identical to calling :func:`query_angle_terms` with
    that query's scalars (the block traversal kernel relies on this to stay
    bit-identical to per-query search).
    """
    query_norms = np.asarray(query_norms, dtype=np.float64)
    if center_norm <= 0.0:
        return np.zeros_like(query_norms), query_norms.copy()
    q_cos = np.asarray(ip_center, dtype=np.float64) / center_norm
    radicand = query_norms * query_norms - q_cos * q_cos
    q_sin = np.where(radicand > 0.0, np.sqrt(np.maximum(radicand, 0.0)), 0.0)
    return q_cos, q_sin


def cone_prune_mask_block(
    q_cos: np.ndarray,
    q_sin: np.ndarray,
    x_cos: np.ndarray,
    x_sin: np.ndarray,
    x_cos_pos: np.ndarray,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Cone-bound prune decisions for a block of queries over one leaf.

    Row ``i`` of the returned boolean matrix marks the leaf points whose
    cone bound (Theorem 3) meets or exceeds ``thresholds[i]`` — the points
    the vectorized ``ScanWithPruning`` skips.  The case analysis matches
    the per-query scan exactly (simplified for ``threshold > 0``): case 1,
    ``cos(theta + phi)``, prunes only when ``q_cos > 0`` and ``x_cos > 0``;
    case 2, ``-cos(theta - phi)``, prunes when it reaches the threshold
    (and then rules case 1 out since ``cos_sum <= cos_diff``).  All
    operations are elementwise, so each row is bit-identical to the
    per-query evaluation.

    Parameters
    ----------
    q_cos, q_sin:
        Per-query angle terms from :func:`query_angle_terms_block`,
        shape ``(g,)``.
    x_cos, x_sin:
        Leaf cone structures, shape ``(m,)``.
    x_cos_pos:
        Precomputed ``x_cos > 0`` mask, shape ``(m,)``.
    thresholds:
        Per-query pruning thresholds, shape ``(g,)`` (finite, positive).
    """
    prod = q_cos[:, None] * x_cos[None, :]
    scaled = q_sin[:, None] * x_sin[None, :]
    sum_le = prod + scaled <= -thresholds[:, None]
    pos_rows = q_cos > 0.0
    if not pos_rows.any():
        return sum_le
    diff = prod
    diff -= scaled  # in place: prod is not needed past this point
    return np.where(
        pos_rows[:, None],
        (x_cos_pos[None, :] & (diff >= thresholds[:, None])) | sum_le,
        sum_le,
    )


def kd_box_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Lower bound of ``|<x, q>|`` over an axis-aligned box (KD-Tree baseline).

    For ``x`` constrained to ``lower <= x <= upper`` the inner product
    ``<x, q>`` ranges over ``[lo, hi]`` with

        lo = sum_i min(q_i * lower_i, q_i * upper_i)
        hi = sum_i max(q_i * lower_i, q_i * upper_i)

    so ``min |<x, q>| = 0`` if the interval straddles zero and otherwise the
    nearer endpoint's magnitude.  This is the "bounding box" bound the paper
    argues is more cumbersome than the ball bound (Section III-A, point 2);
    we implement it for the KD-Tree comparison baseline.
    """
    prod_lower = query * lower
    prod_upper = query * upper
    lo = float(np.minimum(prod_lower, prod_upper).sum())
    hi = float(np.maximum(prod_lower, prod_upper).sum())
    if lo <= 0.0 <= hi:
        return 0.0
    return min(abs(lo), abs(hi))

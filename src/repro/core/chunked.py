"""Chunked, memory-bounded builds for the tree families.

``P2HIndex.fit`` materializes the full augmented matrix, builds the tree
over it, and stores the leaf-ordered copy — three ``O(n * d)`` residents at
peak.  :func:`chunked_fit` builds the *same kind* of tree while holding
only a caller-capped number of rows in RAM at any moment, so an index
several times larger than the budget can be constructed and (with the mmap
backend) served:

1. The input is a *row source* (:func:`repro.storage.as_row_source`):
   ideally a path to a ``.npy`` file, read with plain file I/O so the
   source never enters the process's resident set.
2. Nodes larger than the budget are split *streaming*: node summaries
   (centroid/radius, or the KD box) and the split assignment are computed
   in cost-balanced chunk passes (:func:`repro.storage.balanced_chunks`)
   over the node's rows; only the ``int64`` permutation is resident.
3. Once a node fits the budget, its rows are gathered and the family's
   ordinary in-RAM builder runs on them; the finished subtree is grafted
   into the global node arrays, and its leaf-ordered rows are spilled to
   the index's :class:`~repro.storage.base.ArrayStore` through a
   :class:`~repro.storage.base.RowWriter` as the subtree finalizes.
4. BC-Tree's per-point leaf structures (descending-``r_x`` re-sort, ball
   and cone components) are computed in a bounded post-pass that reads
   each leaf block back from the spilled store.

The resulting index serves through the exact same engine paths as a
resident ``fit`` — with a budget of at least ``n`` rows the build reduces
to the standard one (identical tree, identical leaf bytes).  Under a
smaller budget the tree's *shape* differs (streamed splits pick pivots
from a sample, and centers of streamed internal nodes are computed
directly rather than via Lemma 1), but exact search results are identical
by construction: exactness never depends on the tree shape, only pruning
efficiency does.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.distances import augment_points
from repro.core.splits import seed_grow_pivots
from repro.core.tree_base import NO_CHILD, TreeArrays, build_tree
from repro.storage import as_row_source, balanced_chunks, rows_in_budget
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

#: Most sample rows drawn for a streamed node's seed-grow pivots.
_PIVOT_SAMPLE_ROWS = 4096


def chunked_fit(index, source, *, memory_budget_mb: float = 256.0):
    """Fit a tree index from ``source`` under a row-memory budget.

    Parameters
    ----------
    index:
        An unfitted (or refittable) tree-family index — ``BallTree``,
        ``BCTree``, ``RPTree``, or ``KDTree``.  Its ``storage`` spec
        decides where the leaf-ordered copy is spilled; combine with
        ``storage="mmap"`` for a fully out-of-core build.
    source:
        Anything :func:`repro.storage.as_row_source` accepts — a path to
        a ``.npy`` file (recommended: rows are read with plain file I/O,
        so the source stays out of the resident set), a 2-D array, or a
        custom reader.  Raw ``(n, d-1)`` rows by default; augmented rows
        with ``augment=False`` on the index.
    memory_budget_mb:
        Approximate cap on the point rows held resident at once, in MiB.
        The budget is split between the in-RAM subtree builds (which copy
        their slice a couple of times) and the streaming pass buffers.

    Returns
    -------
    The fitted ``index``.
    """
    family = _family_of(index)
    budget_bytes = int(float(memory_budget_mb) * (1 << 20))
    if budget_bytes <= 0:
        raise ValueError(
            f"memory_budget_mb must be positive, got {memory_budget_mb}"
        )

    src = as_row_source(source)
    rows_total, raw_dim = src.shape
    if rows_total < 1:
        raise ValueError("points must contain at least one row")
    dim = raw_dim + 1 if index.augment else raw_dim
    if dim < 2:
        raise ValueError(f"points must have at least one coordinate, got d={dim}")

    # Budget split: an in-budget subtree holds its gathered rows, the
    # builder's per-node slice copies, and the leaf-ordered spill block
    # (~3 copies at peak); streaming passes hold one chunk.
    subtree_rows = max(2, rows_in_budget(budget_bytes // 4, dim))
    pass_rows = max(1, rows_in_budget(budget_bytes // 8, dim))

    index._mutation_version = getattr(index, "_mutation_version", 0) + 1
    index._engine_cache = None
    with Timer() as timer:
        _validate_source(src, index.augment, pass_rows)
        _build_chunked(
            index, family, src, rows_total, dim, subtree_rows, pass_rows
        )
    index.indexing_seconds = timer.elapsed
    if isinstance(source, (str, bytes)) or hasattr(src, "close"):
        src.close()
    return index


# ----------------------------------------------------------------- families


def _family_of(index) -> str:
    """Which build rules ``index`` needs (subclass order matters)."""
    from repro.core.ball_tree import BallTree
    from repro.core.bc_tree import BCTree
    from repro.core.kd_tree import KDTree
    from repro.core.rp_tree import RPTree

    if isinstance(index, RPTree):
        return "rp"
    if isinstance(index, BCTree):
        return "bc"
    if isinstance(index, BallTree):
        return "ball"
    if isinstance(index, KDTree):
        return "kd"
    raise TypeError(
        f"chunked_fit supports the tree families (BallTree, BCTree, "
        f"RPTree, KDTree); got {type(index).__name__}"
    )


def _build_chunked(index, family, src, n, d, subtree_rows, pass_rows) -> None:
    augment = index.augment
    leaf_size = index.leaf_size
    rng = ensure_rng(getattr(index, "random_state", None))

    store = index.storage.create_store()
    writer = store.writer("points_leaf", (n, d))

    perm = np.arange(n, dtype=np.int64)
    ball_like = family in ("ball", "bc", "rp")
    centers: List[np.ndarray] = []
    radii: List[float] = []
    lowers: List[np.ndarray] = []
    uppers: List[np.ndarray] = []
    starts: List[int] = []
    ends: List[int] = []
    lefts: List[int] = []
    rights: List[int] = []

    def allocate(start: int, end: int) -> int:
        node_id = len(starts)
        if ball_like:
            centers.append(np.zeros(d))
            radii.append(0.0)
        else:
            lowers.append(np.zeros(d))
            uppers.append(np.zeros(d))
        starts.append(start)
        ends.append(end)
        lefts.append(NO_CHILD)
        rights.append(NO_CHILD)
        return node_id

    def load(indices: np.ndarray) -> np.ndarray:
        rows = np.asarray(src.gather(indices), dtype=np.float64)
        return augment_points(rows) if augment else rows

    stack = [allocate(0, n)]
    while stack:
        node = stack.pop()
        start, end = starts[node], ends[node]
        size = end - start

        if size <= subtree_rows:
            # In budget: gather, build the subtree in RAM, graft, spill.
            indices = perm[start:end]
            rows = load(indices)
            if family == "kd":
                from repro.core.kd_tree import build_kd_tree

                sub = build_kd_tree(rows, leaf_size)
            else:
                sub = build_tree(
                    rows,
                    leaf_size,
                    rng=rng,
                    centers_from_children=(family == "bc"),
                    split_fn=_subtree_split_fn(family),
                )
            perm[start:end] = indices[sub.perm]
            writer.write(start, rows[sub.perm])
            _graft(
                sub, node, start, ball_like,
                centers, radii, lowers, uppers,
                starts, ends, lefts, rights,
            )
            continue

        # Over budget: summarize and split in streaming passes.
        if ball_like:
            center = _streaming_mean(load, perm, start, end, pass_rows, d)
            centers[node] = center
            radii[node] = _streaming_radius(
                load, perm, start, end, pass_rows, center
            )
            if family == "rp":
                mid = _streamed_rp_split(
                    load, perm, start, end, pass_rows, rng, d
                )
            else:
                mid = _streamed_seed_grow_split(
                    load, perm, start, end, pass_rows, rng
                )
        else:
            lower, upper = _streaming_min_max(load, perm, start, end, pass_rows, d)
            lowers[node] = lower
            uppers[node] = upper
            spreads = upper - lower
            axis = int(np.argmax(spreads))
            if spreads[axis] <= 0.0:
                # All points identical: an (oversized) leaf; spill the rows
                # chunk by chunk — no subtree will ever cover this slice.
                for lo, hi in balanced_chunks(size, pass_rows):
                    writer.write(start + lo, load(perm[start + lo: start + hi]))
                continue
            mid = _streamed_kd_split(load, perm, start, end, pass_rows, axis)

        left = allocate(start, mid)
        right = allocate(mid, end)
        lefts[node] = left
        rights[node] = right
        stack.append(right)
        stack.append(left)

    if ball_like:
        centers_arr = np.asarray(centers, dtype=np.float64)
        index.tree = TreeArrays(
            centers=centers_arr,
            radii=np.asarray(radii, dtype=np.float64),
            start=np.asarray(starts, dtype=np.int64),
            end=np.asarray(ends, dtype=np.int64),
            left_child=np.asarray(lefts, dtype=np.int64),
            right_child=np.asarray(rights, dtype=np.int64),
            perm=perm,
            center_norms=np.linalg.norm(centers_arr, axis=1),
        )
    else:
        from repro.core.kd_tree import _KDArrays

        index.tree = _KDArrays(
            lower=np.asarray(lowers),
            upper=np.asarray(uppers),
            start=np.asarray(starts, dtype=np.int64),
            end=np.asarray(ends, dtype=np.int64),
            left_child=np.asarray(lefts, dtype=np.int64),
            right_child=np.asarray(rights, dtype=np.int64),
            perm=perm,
        )

    if family == "bc":
        _bc_leaf_pass(index, writer)

    writer.close()
    index._store = store
    index._points = None
    index._fitted = True
    index.num_points = n
    index.dim = d


def _subtree_split_fn(family: str):
    if family == "rp":
        from repro.core.rp_tree import random_projection_split

        return random_projection_split
    return None  # build_tree defaults to the paper's seed-grow rule


def _graft(
    sub, node, start, ball_like,
    centers, radii, lowers, uppers, starts, ends, lefts, rights,
) -> None:
    """Splice a subtree built over rows ``[start, ...)`` into the arrays.

    The subtree's root refills the already-allocated ``node``; its
    remaining nodes are appended, with child pointers remapped by
    ``sub_id -> base + sub_id - 1`` and row ranges shifted by ``start``.
    """
    base = len(starts)

    def mapped(child: int) -> int:
        if child == NO_CHILD:
            return NO_CHILD
        return node if child == 0 else base + child - 1

    if ball_like:
        centers[node] = sub.centers[0]
        radii[node] = float(sub.radii[0])
    else:
        lowers[node] = sub.lower[0]
        uppers[node] = sub.upper[0]
    starts[node] = start + int(sub.start[0])
    ends[node] = start + int(sub.end[0])
    lefts[node] = mapped(int(sub.left_child[0]))
    rights[node] = mapped(int(sub.right_child[0]))

    num_sub = int(sub.start.shape[0])
    for j in range(1, num_sub):
        if ball_like:
            centers.append(sub.centers[j])
            radii.append(float(sub.radii[j]))
        else:
            lowers.append(sub.lower[j])
            uppers.append(sub.upper[j])
        starts.append(start + int(sub.start[j]))
        ends.append(start + int(sub.end[j]))
        lefts.append(mapped(int(sub.left_child[j])))
        rights.append(mapped(int(sub.right_child[j])))


# ---------------------------------------------------------- streaming passes


def _streaming_mean(load, perm, start, end, pass_rows, d) -> np.ndarray:
    total = np.zeros(d, dtype=np.float64)
    size = end - start
    for lo, hi in balanced_chunks(size, pass_rows):
        total += load(perm[start + lo: start + hi]).sum(axis=0)
    return total / size


def _streaming_radius(load, perm, start, end, pass_rows, center) -> float:
    radius = 0.0
    for lo, hi in balanced_chunks(end - start, pass_rows):
        rows = load(perm[start + lo: start + hi])
        radius = max(
            radius, float(np.max(np.linalg.norm(rows - center, axis=1)))
        )
    return radius


def _streaming_min_max(load, perm, start, end, pass_rows, d):
    lower = np.full(d, np.inf)
    upper = np.full(d, -np.inf)
    for lo, hi in balanced_chunks(end - start, pass_rows):
        rows = load(perm[start + lo: start + hi])
        np.minimum(lower, rows.min(axis=0), out=lower)
        np.maximum(upper, rows.max(axis=0), out=upper)
    return lower, upper


def _positional_mid(perm, start, end) -> int:
    return start + (end - start) // 2


def _apply_split(perm, start, end, left_idx, right_idx) -> int:
    """Write a two-way partition back into ``perm``; returns the boundary.

    Falls back to a positional split when one side is empty (duplicates
    collapsing on a pivot), mirroring the in-RAM split rules' guarantee
    that construction always makes progress.
    """
    if left_idx.size == 0 or right_idx.size == 0:
        return _positional_mid(perm, start, end)
    perm[start: start + left_idx.size] = left_idx
    perm[start + left_idx.size: end] = right_idx
    return start + left_idx.size


def _streamed_seed_grow_split(load, perm, start, end, pass_rows, rng) -> int:
    """Seed-grow split with sampled pivots and a streamed assignment.

    The in-RAM rule picks pivots by scanning the whole node twice; here
    the pivots come from a bounded sample (the far-pair property degrades
    gracefully under sampling), and the pivot-distance assignment streams
    over the node in chunks.
    """
    size = end - start
    sample_size = min(size, max(2, min(pass_rows, _PIVOT_SAMPLE_ROWS)))
    sample_pos = rng.choice(size, size=sample_size, replace=False)
    sample = load(perm[start + np.sort(sample_pos)])
    left_pivot, right_pivot = seed_grow_pivots(sample, rng)
    if left_pivot == right_pivot or np.allclose(
        sample[left_pivot], sample[right_pivot]
    ):
        return _positional_mid(perm, start, end)
    pivot_left = sample[left_pivot]
    pivot_right = sample[right_pivot]

    left_parts: List[np.ndarray] = []
    right_parts: List[np.ndarray] = []
    for lo, hi in balanced_chunks(size, pass_rows):
        indices = perm[start + lo: start + hi]
        rows = load(indices)
        to_left = (
            np.linalg.norm(rows - pivot_left, axis=1)
            <= np.linalg.norm(rows - pivot_right, axis=1)
        )
        left_parts.append(indices[to_left])
        right_parts.append(indices[~to_left])
    return _apply_split(
        perm, start, end,
        np.concatenate(left_parts), np.concatenate(right_parts),
    )


def _streamed_rp_split(load, perm, start, end, pass_rows, rng, d) -> int:
    """Random-projection split with the projections computed in chunks.

    The 1-D projection vector (8 bytes/row) is the only full-node
    resident; the jittered-median threshold matches the in-RAM rule.
    """
    size = end - start
    direction = rng.normal(size=d)
    norm = float(np.linalg.norm(direction))
    if norm == 0.0:
        direction = np.ones(d)
        norm = float(np.linalg.norm(direction))
    direction /= norm

    projections = np.empty(size, dtype=np.float64)
    for lo, hi in balanced_chunks(size, pass_rows):
        projections[lo:hi] = load(perm[start + lo: start + hi]) @ direction
    lower, upper = np.percentile(projections, [25.0, 75.0])
    if upper > lower:
        threshold = float(rng.uniform(lower, upper))
    else:
        threshold = float(np.median(projections))
    to_left = projections <= threshold
    return _apply_split(
        perm, start, end,
        perm[start:end][to_left], perm[start:end][~to_left],
    )


def _streamed_kd_split(load, perm, start, end, pass_rows, axis) -> int:
    """Median split on ``axis`` with the column gathered in chunks."""
    size = end - start
    values = np.empty(size, dtype=np.float64)
    for lo, hi in balanced_chunks(size, pass_rows):
        values[lo:hi] = load(perm[start + lo: start + hi])[:, axis]
    order = np.argsort(values, kind="stable")
    perm[start:end] = perm[start:end][order]
    return _positional_mid(perm, start, end)


# -------------------------------------------------------------- BC post-pass


def _bc_leaf_pass(index, writer) -> None:
    """Compute BC-Tree leaf structures from the spilled leaf blocks.

    Reads each leaf's rows back through the writer (bounded by the leaf
    size), re-sorts them by descending ``r_x``, rewrites the block and the
    permutation, and fills ``point_radius`` / ``point_cos`` / ``point_sin``
    — the same structures ``BCTree._build`` computes, sourced from the
    store instead of a resident matrix.
    """
    tree = index.tree
    n = tree.perm.shape[0]
    index.point_radius = np.zeros(n, dtype=np.float64)
    index.point_cos = np.zeros(n, dtype=np.float64)
    index.point_sin = np.zeros(n, dtype=np.float64)

    for node in range(tree.num_nodes):
        if not tree.is_leaf(node):
            continue
        start, end = int(tree.start[node]), int(tree.end[node])
        leaf_points = np.asarray(writer.read(start, end), dtype=np.float64)
        center = tree.centers[node]
        center_norm = float(tree.center_norms[node])

        leaf_radii = np.linalg.norm(leaf_points - center, axis=1)
        order = np.argsort(-leaf_radii, kind="stable")
        leaf_points = leaf_points[order]
        leaf_radii = leaf_radii[order]
        tree.perm[start:end] = tree.perm[start:end][order]
        writer.write(start, leaf_points)

        norms = np.linalg.norm(leaf_points, axis=1)
        if center_norm > 0.0:
            x_cos = (leaf_points @ center) / center_norm
        else:
            x_cos = np.zeros_like(norms)
        x_sin = np.sqrt(np.maximum(norms * norms - x_cos * x_cos, 0.0))

        index.point_radius[start:end] = leaf_radii
        index.point_cos[start:end] = x_cos
        index.point_sin[start:end] = x_sin


# ---------------------------------------------------------------- validation


def _validate_source(src, augment: bool, pass_rows: int) -> None:
    """Streamed equivalent of ``check_points_matrix`` + augmentation check."""
    n = src.shape[0]
    for lo, hi in balanced_chunks(n, max(pass_rows, 4096)):
        rows = np.asarray(src.read(lo, hi), dtype=np.float64)
        if not np.isfinite(rows).all():
            raise ValueError(
                f"points must be finite; rows [{lo}, {hi}) contain "
                "NaN or infinity"
            )
        if not augment and not np.all(rows[:, -1] == 1.0):
            raise ValueError(
                "augment=False requires points whose last column is all ones"
            )

"""Best-first (priority-queue) traversal for Ball-Tree and BC-Tree.

The paper's Algorithms 3 and 5 traverse the tree depth-first, ordering the
two children of every expanded node by the branch preference.  A classical
alternative for ball trees is *best-first* search: keep a global priority
queue of frontier nodes ordered by their node-level ball bound (Theorem 2)
and always expand the most promising node next.

Best-first search visits nodes in non-decreasing bound order, so with an
unlimited budget it expands the minimum possible number of nodes for the
bound it uses.  Its price is the priority-queue overhead and the loss of
the cheap, cache-friendly stack discipline — which is exactly the trade-off
the ablation benchmark ``bench_ablation_traversal_order.py`` measures.

The searcher operates on an already-fitted :class:`~repro.core.ball_tree.BallTree`
or :class:`~repro.core.bc_tree.BCTree` and reuses the owning index's leaf
scan (so BC-Tree's point-level pruning still applies).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

import numpy as np

from repro.core.ball_tree import BallTree
from repro.core.bc_tree import BCTree
from repro.core.bounds import node_ball_bound
from repro.core.index_base import NotFittedError
from repro.core.results import SearchResult, SearchStats, TopKCollector
from repro.core.tree_base import NO_CHILD
from repro.utils.validation import check_fraction, check_positive_int


class BestFirstSearcher:
    """Best-first P2HNNS search over a fitted Ball-Tree or BC-Tree.

    Parameters
    ----------
    index:
        A fitted :class:`BallTree` or :class:`BCTree`.  The searcher reads
        the index's tree arrays; it never mutates the index.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BCTree
    >>> from repro.core.best_first import BestFirstSearcher
    >>> rng = np.random.default_rng(3)
    >>> data = rng.normal(size=(400, 12))
    >>> tree = BCTree(leaf_size=32, random_state=3).fit(data)
    >>> searcher = BestFirstSearcher(tree)
    >>> result = searcher.search(rng.normal(size=13), k=5)
    >>> len(result)
    5
    """

    def __init__(self, index: BallTree) -> None:
        if not isinstance(index, BallTree):
            raise TypeError(
                "BestFirstSearcher requires a BallTree or BCTree, "
                f"got {type(index).__name__}"
            )
        if index.tree is None:
            raise NotFittedError("the index must be fitted before best-first search")
        self.index = index

    # ------------------------------------------------------------------ API

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ) -> SearchResult:
        """Return the top-``k`` nearest points to the hyperplane ``query``.

        Parameters
        ----------
        query:
            Hyperplane coefficients of shape ``(d,)``; normalized according
            to the owning index's ``normalize_queries`` setting.
        k:
            Number of neighbors to return.
        candidate_fraction, max_candidates:
            Optional approximate-search budget, interpreted exactly as by
            :meth:`BallTree.search`.
        """
        index = self.index
        # Reuse the owning index's validation and normalization path so a
        # best-first search sees exactly the same query as a DFS search.
        from repro.core.distances import normalize_query
        from repro.utils.validation import check_query_vector

        q = check_query_vector(query, expected_dim=index.dim, name="query")
        if index.normalize_queries:
            q = normalize_query(q)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), index.num_points)
        budget = self._resolve_budget(candidate_fraction, max_candidates)
        return self._search_normalized(q, k, budget)

    # ------------------------------------------------------------ internals

    def _resolve_budget(self, candidate_fraction, max_candidates) -> float:
        candidate_fraction = check_fraction(
            candidate_fraction, name="candidate_fraction"
        )
        if max_candidates is not None:
            max_candidates = check_positive_int(max_candidates, name="max_candidates")
        if candidate_fraction is not None and max_candidates is not None:
            raise ValueError(
                "pass either candidate_fraction or max_candidates, not both"
            )
        if candidate_fraction is not None:
            return max(1.0, candidate_fraction * self.index.num_points)
        if max_candidates is not None:
            return float(max_candidates)
        return float("inf")

    def _search_normalized(
        self, query: np.ndarray, k: int, budget: float
    ) -> SearchResult:
        index = self.index
        tree = index.tree
        centers = tree.centers
        radii = tree.radii
        query_norm = float(np.linalg.norm(query))

        stats = SearchStats()
        collector = TopKCollector(k)
        counter = itertools.count()  # tie-breaker so heap never compares tuples deeper

        root_ip = float(centers[0] @ query)
        stats.center_inner_products += 1
        root_bound = node_ball_bound(root_ip, query_norm, radii[0])
        frontier = [(root_bound, next(counter), 0, root_ip)]

        is_bc = isinstance(index, BCTree)

        while frontier:
            if stats.candidates_verified >= budget:
                break
            bound, _, node, ip_node = heapq.heappop(frontier)
            # Frontier bounds only grow, so the first bound at or above the
            # current threshold terminates the whole search.
            if bound >= collector.threshold:
                break
            stats.nodes_visited += 1

            left = tree.left_child[node]
            if left == NO_CHILD:
                if is_bc:
                    index._scan_leaf_with_pruning(
                        node, ip_node, query, query_norm, collector, stats, False
                    )
                else:
                    index._scan_leaf(node, query, collector, stats, False)
                continue

            right = tree.right_child[node]
            ip_left = float(centers[left] @ query)
            stats.center_inner_products += 1
            if is_bc and index.collaborative_ip:
                size = tree.end[node] - tree.start[node]
                left_size = tree.end[left] - tree.start[left]
                right_size = tree.end[right] - tree.start[right]
                ip_right = (size * ip_node - left_size * ip_left) / right_size
            else:
                ip_right = float(centers[right] @ query)
                stats.center_inner_products += 1

            lb_left = node_ball_bound(ip_left, query_norm, radii[left])
            lb_right = node_ball_bound(ip_right, query_norm, radii[right])
            threshold = collector.threshold
            if lb_left < threshold:
                heapq.heappush(frontier, (lb_left, next(counter), left, ip_left))
            if lb_right < threshold:
                heapq.heappush(frontier, (lb_right, next(counter), right, ip_right))

        return collector.to_result(stats)


def best_first_search(
    index: BallTree,
    query: np.ndarray,
    k: int = 1,
    *,
    candidate_fraction: Optional[float] = None,
    max_candidates: Optional[int] = None,
) -> SearchResult:
    """Convenience wrapper: one-off best-first search on a fitted tree index."""
    searcher = BestFirstSearcher(index)
    return searcher.search(
        query,
        k=k,
        candidate_fraction=candidate_fraction,
        max_candidates=max_candidates,
    )

"""Best-first (priority-queue) traversal for Ball-Tree and BC-Tree.

The paper's Algorithms 3 and 5 traverse the tree depth-first, ordering the
two children of every expanded node by the branch preference.  A classical
alternative for ball trees is *best-first* search: keep a global priority
queue of frontier nodes ordered by their node-level ball bound (Theorem 2)
and always expand the most promising node next.

Best-first search visits nodes in non-decreasing bound order, so with an
unlimited budget it expands the minimum possible number of nodes for the
bound it uses.  Its price is the priority-queue overhead and the loss of
the cheap, cache-friendly stack discipline — which is exactly the trade-off
the ablation benchmark ``bench_ablation_traversal_order.py`` measures.

Both traversal orders are two modes of the same
:class:`~repro.engine.traversal.TraversalEngine` (a stack frontier vs. a
heap frontier); this module is a thin façade that reuses the owning index's
cached engine, so BC-Tree's point-level leaf pruning and the
collaborative inner-product accounting apply identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.ball_tree import BallTree
from repro.core.index_base import NotFittedError
from repro.core.results import SearchResult
from repro.engine.batch import BatchSearchResult, execute_batch


class BestFirstSearcher:
    """Best-first P2HNNS search over a fitted Ball-Tree or BC-Tree.

    Parameters
    ----------
    index:
        A fitted :class:`BallTree` or :class:`BCTree`.  The searcher reads
        the index's tree arrays; it never mutates the index.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BCTree
    >>> from repro.core.best_first import BestFirstSearcher
    >>> rng = np.random.default_rng(3)
    >>> data = rng.normal(size=(400, 12))
    >>> tree = BCTree(leaf_size=32, random_state=3).fit(data)
    >>> searcher = BestFirstSearcher(tree)
    >>> result = searcher.search(rng.normal(size=13), k=5)
    >>> len(result)
    5
    """

    def __init__(self, index: BallTree) -> None:
        if not isinstance(index, BallTree):
            raise TypeError(
                "BestFirstSearcher requires a BallTree or BCTree, "
                f"got {type(index).__name__}"
            )
        if index.tree is None:
            raise NotFittedError("the index must be fitted before best-first search")
        self.index = index

    # ------------------------------------------------------------------ API

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ) -> SearchResult:
        """Return the top-``k`` nearest points to the hyperplane ``query``.

        Parameters
        ----------
        query:
            Hyperplane coefficients of shape ``(d,)``; normalized according
            to the owning index's ``normalize_queries`` setting.
        k:
            Number of neighbors to return.
        candidate_fraction, max_candidates:
            Optional approximate-search budget, interpreted exactly as by
            :meth:`BallTree.search`.
        """
        index = self.index
        # Reuse the owning index's validation and normalization path so a
        # best-first search sees exactly the same query as a DFS search.
        from repro.core.distances import normalize_query
        from repro.utils.validation import check_query_vector

        q = check_query_vector(query, expected_dim=index.dim, name="query")
        if index.normalize_queries:
            q = normalize_query(q)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), index.num_points)
        budget = index._resolve_budget(candidate_fraction, max_candidates)
        return index._engine().search(q, k, budget=budget, order="best_first")

    def batch_search(
        self,
        queries: np.ndarray,
        k: int = 1,
        *,
        n_jobs: Optional[int] = None,
        **search_kwargs,
    ) -> BatchSearchResult:
        """Best-first :meth:`search` for every row of ``queries``.

        Dispatched through :func:`repro.engine.batch.execute_batch`, so the
        results are bit-identical to sequential calls for every ``n_jobs``.
        """
        return execute_batch(
            self.index,
            queries,
            k,
            n_jobs=n_jobs,
            search_fn=lambda q: self.search(q, k=k, **search_kwargs),
        )


def best_first_search(
    index: BallTree,
    query: np.ndarray,
    k: int = 1,
    *,
    candidate_fraction: Optional[float] = None,
    max_candidates: Optional[int] = None,
) -> SearchResult:
    """Convenience wrapper: one-off best-first search on a fitted tree index."""
    searcher = BestFirstSearcher(index)
    return searcher.search(
        query,
        k=k,
        candidate_fraction=candidate_fraction,
        max_candidates=max_candidates,
    )

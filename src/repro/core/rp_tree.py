"""Randomized Projection Tree (RP-Tree) baseline for P2HNNS.

The paper's Section I and III-A list Randomized Partition Trees (Dasgupta &
Freund, STOC 2008; Dasgupta & Sinha, COLT 2013) among the tree-based methods
with roughly linear construction cost.  This module provides that baseline
on top of the library's shared tree machinery: the tree is built with
*random-projection median splits* instead of the paper's seed-grow rule, but
every node still stores the centroid and enclosing-ball radius, so the exact
same node-level ball bound (Theorem 2) and branch-and-bound search apply.

Comparing RP-Tree with Ball-Tree therefore isolates the effect of the
*splitting rule* on pruning power — one of the design choices DESIGN.md
calls out for ablation (``benchmarks/bench_ablation_split_rule.py``).

Split rule
----------
For a node with points ``P``:

1. draw a random unit direction ``u``;
2. project every point: ``t_i = <u, p_i>``;
3. split at a jittered median of the projections (the jitter, drawn
   uniformly from the middle two quartiles, is the classic RP-tree trick to
   avoid adversarial splits while keeping the two halves balanced).

The rule degenerates to a positional split when all projections coincide,
guaranteeing progress on duplicate-heavy data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.ball_tree import BallTree
from repro.core.policies import BranchPreference
from repro.core.tree_base import build_tree
from repro.utils.rng import ensure_rng


def random_projection_split(
    points: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a node's points at a jittered median of a random projection.

    Parameters
    ----------
    points:
        The points of the node being split, shape ``(m, d)`` with ``m >= 2``.
    rng:
        Random generator used to draw the projection direction and jitter.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Local row-index arrays ``(left_rows, right_rows)``, both non-empty.
    """
    m, dim = points.shape
    if m < 2:
        raise ValueError("need at least two points to split a node")
    direction = rng.normal(size=dim)
    norm = float(np.linalg.norm(direction))
    if norm == 0.0:
        direction = np.ones(dim)
        norm = float(np.linalg.norm(direction))
    direction /= norm

    projections = points @ direction
    lower, upper = np.percentile(projections, [25.0, 75.0])
    if upper > lower:
        threshold = float(rng.uniform(lower, upper))
    else:
        threshold = float(np.median(projections))

    left_rows = np.flatnonzero(projections <= threshold)
    right_rows = np.flatnonzero(projections > threshold)
    if left_rows.size == 0 or right_rows.size == 0:
        # All projections equal (duplicate points): fall back to a positional
        # split so construction always terminates.
        half = m // 2
        return np.arange(half), np.arange(half, m)
    return left_rows, right_rows


class RPTree(BallTree):
    """Random-projection tree index for P2HNNS.

    The search algorithm, branch preferences, and approximate-search budget
    are inherited from :class:`~repro.core.ball_tree.BallTree`; only the
    construction-time splitting rule differs.  Batches — exact and under
    ``candidate_fraction`` / ``max_candidates`` budgets — therefore ride
    the same block traversal kernel (:mod:`repro.engine.block`), with
    results and work counters bit-identical to per-query :meth:`search`.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf.
    branch_preference:
        Child-visit ordering during search (center preference by default).
    random_state:
        Seed or generator for the random projections.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.rp_tree import RPTree
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(500, 16))
    >>> tree = RPTree(leaf_size=32, random_state=0).fit(data)
    >>> len(tree.search(rng.normal(size=17), k=5))
    5
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        branch_preference=BranchPreference.CENTER,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
        storage=None,
    ) -> None:
        super().__init__(
            leaf_size,
            branch_preference=branch_preference,
            random_state=random_state,
            augment=augment,
            normalize_queries=normalize_queries,
            storage=storage,
        )

    def _build(self, points: np.ndarray) -> None:
        self.tree = build_tree(
            points,
            self.leaf_size,
            rng=ensure_rng(self.random_state),
            centers_from_children=False,
            split_fn=random_projection_split,
        )

"""Point-to-hyperplane (P2H) geometry.

The paper (Section II) reduces the P2H distance

    d_P2H(p, q) = |q_d + sum_i p_i q_i| / ||q_{1..d-1}||        (Eq. 1)

to an absolute inner product by two pre-processing steps:

1. *Dimension appending*: every data point ``p in R^{d-1}`` becomes
   ``x = (p; 1) in R^d`` (:func:`augment_points`).
2. *Query rescaling*: the hyperplane query ``q in R^d`` is rescaled so the
   normal vector (its first ``d-1`` coordinates) has unit l2 norm
   (:func:`normalize_query`).

After both steps ``d_P2H(p, q) = |<x, q>|`` (Eq. 2), which is what every
index in this library minimizes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_points_matrix, check_query_vector


def augment_points(points: np.ndarray) -> np.ndarray:
    """Append a constant ``1`` coordinate to every data point.

    Parameters
    ----------
    points:
        Raw data points of shape ``(n, d-1)``.

    Returns
    -------
    numpy.ndarray
        Augmented points ``x = (p; 1)`` of shape ``(n, d)``.
    """
    pts = check_points_matrix(points, name="points")
    ones = np.ones((pts.shape[0], 1), dtype=pts.dtype)
    return np.ascontiguousarray(np.hstack([pts, ones]))


def is_augmented(points: np.ndarray, *, atol: float = 0.0) -> bool:
    """Return ``True`` if the last coordinate of every row equals 1."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] < 2:
        return False
    return bool(np.allclose(pts[:, -1], 1.0, atol=atol))


def normalize_query(query: np.ndarray) -> np.ndarray:
    """Rescale a hyperplane query so its normal vector has unit norm.

    The hyperplane is ``{p : <n, p> + b = 0}`` with normal
    ``n = q[:-1]`` and offset ``b = q[-1]``.  Rescaling by ``1/||n||``
    leaves the hyperplane (and therefore the nearest-neighbor ranking)
    unchanged but makes ``|<x, q>|`` equal to the geometric P2H distance.

    Parameters
    ----------
    query:
        Hyperplane coefficients of shape ``(d,)``.

    Returns
    -------
    numpy.ndarray
        The rescaled query.

    Raises
    ------
    ValueError
        If the normal vector is (numerically) zero — such a "hyperplane"
        is degenerate and has no meaningful P2H distance.
    """
    q = check_query_vector(query, name="query")
    if q.shape[0] < 2:
        raise ValueError("a hyperplane query needs at least 2 coefficients")
    norm = float(np.linalg.norm(q[:-1]))
    if norm <= 0.0 or not np.isfinite(norm):
        raise ValueError("degenerate hyperplane: normal vector has zero norm")
    return q / norm


def p2h_distance_raw(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """P2H distance in the paper's *raw* formulation (Eq. 1).

    Parameters
    ----------
    points:
        Raw (non-augmented) data points of shape ``(n, d-1)`` or ``(d-1,)``.
    query:
        Hyperplane coefficients of shape ``(d,)`` — *not* required to have a
        unit-norm normal vector.

    Returns
    -------
    numpy.ndarray
        Distances of shape ``(n,)`` (or a scalar array for a single point).
    """
    q = check_query_vector(query, name="query")
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if pts.shape[1] != q.shape[0] - 1:
        raise ValueError(
            f"points have dimension {pts.shape[1]}, expected {q.shape[0] - 1}"
        )
    normal = q[:-1]
    denom = float(np.linalg.norm(normal))
    if denom <= 0.0:
        raise ValueError("degenerate hyperplane: normal vector has zero norm")
    numer = np.abs(pts @ normal + q[-1])
    result = numer / denom
    if np.asarray(points).ndim == 1:
        return result[0]
    return result


def p2h_distance(augmented_points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """P2H distance in the simplified formulation ``|<x, q>|`` (Eq. 2).

    Parameters
    ----------
    augmented_points:
        Augmented data points ``x = (p; 1)`` of shape ``(n, d)`` or ``(d,)``.
    query:
        Normalized hyperplane query of shape ``(d,)`` (see
        :func:`normalize_query`).

    Returns
    -------
    numpy.ndarray
        ``|<x, q>|`` for every row.
    """
    q = np.asarray(query, dtype=np.float64)
    pts = np.atleast_2d(np.asarray(augmented_points, dtype=np.float64))
    if pts.shape[1] != q.shape[0]:
        raise ValueError(
            f"augmented points have dimension {pts.shape[1]}, "
            f"expected {q.shape[0]}"
        )
    result = np.abs(pts @ q)
    if np.asarray(augmented_points).ndim == 1:
        return result[0]
    return result


def absolute_inner_products(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Vectorized ``|<x, q>|`` for a 2-D block of points (no validation).

    This is the hot inner loop shared by every index's verification step;
    callers guarantee matching shapes.
    """
    return np.abs(points @ query)

"""Ball-Tree index for P2HNNS (paper Section III, Algorithms 1-3).

The index recursively partitions the augmented data with the seed-grow rule
and stores, per node, the centroid and the radius of the enclosing ball.
Search is a depth-first branch-and-bound (Algorithm 3): a node is pruned
whenever its node-level ball bound (Theorem 2)

    max(|<q, N.c>| - ||q|| * N.r, 0)

is at least the current k-th best distance ``lambda``; leaves are scanned
exhaustively.  The two children of an expanded internal node are visited in
the order given by the *branch preference* (center preference by default;
see :class:`~repro.core.policies.BranchPreference` and Figure 7).

Approximate search is supported through a *candidate budget*: traversal
stops once a given number (or fraction) of points has been verified, which
is how the paper trades recall for query time in Figures 5-6.

The traversal itself is executed by the shared
:class:`~repro.engine.traversal.TraversalEngine`; this class only owns
construction and the engine configuration.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.index_base import LeafStoredPointsMixin, P2HIndex
from repro.core.policies import BranchPreference
from repro.core.results import SearchResult
from repro.core.tree_base import NodeView, TreeArrays, build_tree
from repro.engine.block import attach_block_timing
from repro.engine.budget import resolve_budget
from repro.engine.traversal import TraversalEngine
from repro.utils.validation import check_positive_int


class BallTree(LeafStoredPointsMixin, P2HIndex):
    """Ball-Tree index for point-to-hyperplane nearest neighbor search.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf (``N0`` in the paper; default 100).
    branch_preference:
        Default child-visit ordering; ``"center"`` (paper default) or
        ``"lower_bound"``.
    random_state:
        Seed or generator for the seed-grow split.
    augment, normalize_queries, storage:
        See :class:`~repro.core.index_base.P2HIndex`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BallTree
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(500, 16))
    >>> query = rng.normal(size=17)
    >>> tree = BallTree(leaf_size=32, random_state=0).fit(data)
    >>> result = tree.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        branch_preference=BranchPreference.CENTER,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
        storage=None,
    ) -> None:
        super().__init__(
            augment=augment,
            normalize_queries=normalize_queries,
            storage=storage,
        )
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.branch_preference = BranchPreference.coerce(branch_preference)
        self.random_state = random_state
        self.tree: Optional[TreeArrays] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        self.tree = build_tree(
            points,
            self.leaf_size,
            rng=self.random_state,
            centers_from_children=False,
        )

    @property
    def root(self) -> NodeView:
        """Read-only view of the root node (for inspection and tests).

        Materializes the un-permuted point matrix (see
        :attr:`~repro.core.index_base.P2HIndex.points`); an inspection
        path, not a query path.
        """
        self._check_fitted()
        return NodeView(self.tree, 0, self.points)

    @property
    def num_nodes(self) -> int:
        self._check_fitted()
        return self.tree.num_nodes

    @property
    def num_leaves(self) -> int:
        self._check_fitted()
        return self.tree.num_leaves

    def depth(self) -> int:
        """Tree height (root = 1)."""
        self._check_fitted()
        return self.tree.depth()

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        if self.tree is None:
            return ()
        return self.tree.payload_arrays()

    # ---------------------------------------------------------------- search

    def _resolve_budget(self, candidate_fraction, max_candidates) -> float:
        """Translate the approximate-search knobs into a candidate budget."""
        return resolve_budget(candidate_fraction, max_candidates, self.num_points)

    def _make_engine(self) -> TraversalEngine:
        return TraversalEngine.for_ball_tree(self)

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
        branch_preference=None,
        profile: bool = False,
        exact: bool = True,
        dtype: Optional[str] = None,
    ) -> SearchResult:
        """Branch-and-bound traversal (Algorithm 3) generalized to top-k.

        ``exact=False`` routes the query through the approximate fast-mode
        kernel (:mod:`repro.engine.fast`) in the requested storage
        ``dtype`` (float32 by default) instead of the bit-exact engine.
        """
        budget = self._resolve_budget(candidate_fraction, max_candidates)
        preference = (
            self.branch_preference
            if branch_preference is None
            else BranchPreference.coerce(branch_preference)
        )
        if not exact:
            if profile:
                raise ValueError(
                    "profile=True requires the exact path (exact=True)"
                )
            # repro: allow[REP102] exact=False hand-off to the fast tier;
            # the literal names its default storage dtype.
            return self._engine().fast_kernel(dtype or "float32").search_block(
                query[None, :], k, preference=preference, budget=budget
            )[0]
        if dtype is not None:
            raise ValueError(
                "dtype selects the fast mode's storage precision and "
                "requires exact=False"
            )
        return self._engine().search(
            query,
            k,
            budget=budget,
            order="depth_first",
            preference=preference,
            profile=profile,
        )

    # ---------------------------------------------------------- batch kernel

    def _batch_kernel_veto(
        self,
        candidate_fraction=None,
        max_candidates=None,
        branch_preference=None,
        profile: bool = False,
        exact: bool = True,
        dtype=None,
        **unknown,
    ) -> Optional[str]:
        """Why the block traversal kernel cannot cover these search options.

        Returns a human-readable reason (surfaced by
        :func:`repro.engine.batch.kernel_dispatch_reason` and the ``run
        batch`` experiment) or None when a kernel applies.  Candidate
        budgets are covered — the kernel carries a per-query verified count
        and retires exhausted queries exactly where the per-query loop
        breaks.  ``exact=False`` dispatches the fast GEMM kernel (which
        also covers budgets).  ``profile=True`` needs per-stage wall timers
        no kernel keeps, and unknown options decline the kernels so the
        per-query ``search`` raises its usual ``TypeError``.
        """
        if unknown:
            return "unknown search options: " + ", ".join(sorted(unknown))
        if profile:
            return (
                "profile=True needs the per-query path's per-stage timers"
            )
        return None

    def _batch_kernel(
        self,
        queries: np.ndarray,
        k: int,
        *,
        candidate_fraction=None,
        max_candidates=None,
        branch_preference=None,
        profile: bool = False,
        exact: bool = True,
        dtype=None,
    ) -> List[SearchResult]:
        """Answer a whole query block with the block traversal kernel.

        The engine dispatches here only for option combinations
        :meth:`_batch_kernel_veto` accepts — the signature still names
        every supported option so explicitly passing its default (e.g.
        ``candidate_fraction=None``) works exactly like per-query
        ``search``.  With ``exact=True`` (the default) results and work
        counters are bit-identical to per-query :meth:`search` (see
        :mod:`repro.engine.block`), including under
        ``candidate_fraction`` / ``max_candidates`` budgets; with
        ``exact=False`` the block runs on the approximate fast GEMM kernel
        (:mod:`repro.engine.fast`) in the requested storage ``dtype``.
        """
        wall_tic = time.perf_counter()
        matrix = self._prepare_query_matrix(queries)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(int(k), self.num_points)
        budget = self._resolve_budget(candidate_fraction, max_candidates)
        if exact:
            if dtype is not None:
                raise ValueError(
                    "dtype selects the fast mode's storage precision and "
                    "requires exact=False"
                )
            kernel = self._engine().block_kernel()
        else:
            # repro: allow[REP102] exact=False hand-off to the fast tier;
            # the literal names its default storage dtype.
            kernel = self._engine().fast_kernel(dtype or "float32")
        results = kernel.search_block(
            matrix, k, preference=branch_preference, budget=budget
        )
        attach_block_timing(results, time.perf_counter() - wall_tic)
        return results

"""Ball-Tree index for P2HNNS (paper Section III, Algorithms 1-3).

The index recursively partitions the augmented data with the seed-grow rule
and stores, per node, the centroid and the radius of the enclosing ball.
Search is a depth-first branch-and-bound (Algorithm 3): a node is pruned
whenever its node-level ball bound (Theorem 2)

    max(|<q, N.c>| - ||q|| * N.r, 0)

is at least the current k-th best distance ``lambda``; leaves are scanned
exhaustively.  The two children of an expanded internal node are visited in
the order given by the *branch preference* (center preference by default;
see :class:`~repro.core.policies.BranchPreference` and Figure 7).

Approximate search is supported through a *candidate budget*: traversal
stops once a given number (or fraction) of points has been verified, which
is how the paper trades recall for query time in Figures 5-6.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.bounds import node_ball_bound
from repro.core.index_base import P2HIndex
from repro.core.policies import BranchPreference
from repro.core.results import SearchResult, SearchStats, TopKCollector
from repro.core.tree_base import NO_CHILD, NodeView, TreeArrays, build_tree
from repro.utils.validation import check_fraction, check_positive_int


class BallTree(P2HIndex):
    """Ball-Tree index for point-to-hyperplane nearest neighbor search.

    Parameters
    ----------
    leaf_size:
        Maximum number of points per leaf (``N0`` in the paper; default 100).
    branch_preference:
        Default child-visit ordering; ``"center"`` (paper default) or
        ``"lower_bound"``.
    random_state:
        Seed or generator for the seed-grow split.
    augment, normalize_queries:
        See :class:`~repro.core.index_base.P2HIndex`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import BallTree
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(500, 16))
    >>> query = rng.normal(size=17)
    >>> tree = BallTree(leaf_size=32, random_state=0).fit(data)
    >>> result = tree.search(query, k=5)
    >>> len(result)
    5
    """

    def __init__(
        self,
        leaf_size: int = 100,
        *,
        branch_preference=BranchPreference.CENTER,
        random_state=None,
        augment: bool = True,
        normalize_queries: bool = True,
    ) -> None:
        super().__init__(augment=augment, normalize_queries=normalize_queries)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.branch_preference = BranchPreference.coerce(branch_preference)
        self.random_state = random_state
        self.tree: Optional[TreeArrays] = None

    # ----------------------------------------------------------------- build

    def _build(self, points: np.ndarray) -> None:
        self.tree = build_tree(
            points,
            self.leaf_size,
            rng=self.random_state,
            centers_from_children=False,
        )

    @property
    def root(self) -> NodeView:
        """Read-only view of the root node (for inspection and tests)."""
        self._check_fitted()
        return NodeView(self.tree, 0, self._points)

    @property
    def num_nodes(self) -> int:
        self._check_fitted()
        return self.tree.num_nodes

    @property
    def num_leaves(self) -> int:
        self._check_fitted()
        return self.tree.num_leaves

    def depth(self) -> int:
        """Tree height (root = 1)."""
        self._check_fitted()
        return self.tree.depth()

    def _payload_arrays(self) -> Sequence[np.ndarray]:
        if self.tree is None:
            return ()
        return self.tree.payload_arrays()

    # ---------------------------------------------------------------- search

    def _resolve_budget(self, candidate_fraction, max_candidates) -> float:
        """Translate the approximate-search knobs into a candidate budget."""
        candidate_fraction = check_fraction(
            candidate_fraction, name="candidate_fraction"
        )
        if max_candidates is not None:
            max_candidates = check_positive_int(max_candidates, name="max_candidates")
        if candidate_fraction is not None and max_candidates is not None:
            raise ValueError(
                "pass either candidate_fraction or max_candidates, not both"
            )
        if candidate_fraction is not None:
            return max(1.0, candidate_fraction * self.num_points)
        if max_candidates is not None:
            return float(max_candidates)
        return float("inf")

    def _search_one(
        self,
        query: np.ndarray,
        k: int,
        *,
        candidate_fraction: Optional[float] = None,
        max_candidates: Optional[int] = None,
        branch_preference=None,
        profile: bool = False,
    ) -> SearchResult:
        """Branch-and-bound traversal (Algorithm 3) generalized to top-k."""
        preference = (
            self.branch_preference
            if branch_preference is None
            else BranchPreference.coerce(branch_preference)
        )
        budget = self._resolve_budget(candidate_fraction, max_candidates)

        tree = self.tree
        points = self._points
        centers = tree.centers
        radii = tree.radii
        query_norm = float(np.linalg.norm(query))

        stats = SearchStats()
        collector = TopKCollector(k)

        # Stack entries are (node_id, ip_center); the inner product of the
        # query and the node's center is computed at the parent (for branch
        # ordering) and handed down so it is counted exactly once per node.
        root_ip = float(centers[0] @ query)
        stats.center_inner_products += 1
        stack = [(0, root_ip)]

        while stack:
            if stats.candidates_verified >= budget:
                break
            node, ip_node = stack.pop()
            stats.nodes_visited += 1

            tic = time.perf_counter() if profile else 0.0
            lower_bound = node_ball_bound(ip_node, query_norm, radii[node])
            if profile:
                stats.stage_seconds["lower_bounds"] = (
                    stats.stage_seconds.get("lower_bounds", 0.0)
                    + (time.perf_counter() - tic)
                )
            if lower_bound >= collector.threshold:
                continue

            left = tree.left_child[node]
            if left == NO_CHILD:
                self._scan_leaf(node, query, collector, stats, profile)
                continue

            right = tree.right_child[node]
            tic = time.perf_counter() if profile else 0.0
            ip_left = float(centers[left] @ query)
            ip_right = float(centers[right] @ query)
            stats.center_inner_products += 2
            if profile:
                stats.stage_seconds["lower_bounds"] = (
                    stats.stage_seconds.get("lower_bounds", 0.0)
                    + (time.perf_counter() - tic)
                )

            if preference is BranchPreference.CENTER:
                left_first = abs(ip_left) < abs(ip_right)
            else:
                lb_left = node_ball_bound(ip_left, query_norm, radii[left])
                lb_right = node_ball_bound(ip_right, query_norm, radii[right])
                left_first = lb_left < lb_right

            if left_first:
                stack.append((right, ip_right))
                stack.append((left, ip_left))
            else:
                stack.append((left, ip_left))
                stack.append((right, ip_right))

        return collector.to_result(stats)

    def _scan_leaf(
        self,
        node: int,
        query: np.ndarray,
        collector: TopKCollector,
        stats: SearchStats,
        profile: bool,
    ) -> None:
        """Exhaustive scan of a leaf (Algorithm 3, ``ExhaustiveScan``)."""
        tree = self.tree
        start, end = tree.start[node], tree.end[node]
        indices = tree.perm[start:end]
        tic = time.perf_counter() if profile else 0.0
        distances = np.abs(self._points[indices] @ query)
        collector.offer_batch(indices, distances)
        if profile:
            stats.stage_seconds["verification"] = (
                stats.stage_seconds.get("verification", 0.0)
                + (time.perf_counter() - tic)
            )
        stats.candidates_verified += int(indices.shape[0])
        stats.leaves_scanned += 1

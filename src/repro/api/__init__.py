"""repro.api — the stable, declarative front door of the library.

The package collapses the ten-plus index constructors and their scattered
search kwargs into four orthogonal pieces:

* :class:`IndexSpec` — a frozen, JSON-round-trippable description of an
  index configuration (``kind`` string + ``params``), covering every
  family including the ``dynamic`` and ``partitioned`` composites with
  nested sub-index specs;
* the **registry** — :func:`build_index` constructs any family from a
  kind string, spec, or plain dict; :func:`register_index` plugs new
  families in; :func:`available_indexes` lists them;
* :class:`SearchOptions` — one typed, centrally-validated object for
  every search knob (``k``, candidate budget, ``n_jobs``, ``executor``,
  ``block``, ``profile``, family extras), replacing ad-hoc kwarg
  threading;
* :class:`Searcher` — a context-manager session owning a long-lived
  worker pool: repeated ``batch_search`` / ``stream`` calls skip pool
  spawn and (for the process executor) per-call index pickling while
  staying bit-identical to the per-call path.

Persistence is family-agnostic: every ``save`` writes a format-versioned
payload stamped with the index's spec, and :func:`load_index`
reconstructs any family without naming its class.

Quickstart
----------
>>> import numpy as np
>>> from repro.api import IndexSpec, SearchOptions, Searcher, build_index
>>> rng = np.random.default_rng(7)
>>> data = rng.normal(size=(1000, 32))
>>> queries = rng.normal(size=(16, 33))
>>> tree = build_index("bc_tree", leaf_size=64, random_state=7).fit(data)
>>> options = SearchOptions(k=10, n_jobs=2)
>>> with Searcher(tree, options) as searcher:
...     batch = searcher.batch_search(queries)
>>> len(batch)
16
"""

from repro.api.options import SearchOptions
from repro.api.persistence import (
    IndexDescription,
    describe_index,
    load_index,
    save_index,
    saved_spec,
    saved_storage_dtype,
)
from repro.storage import StorageSpec
from repro.api.registry import (
    IndexFamily,
    available_indexes,
    build_index,
    index_family,
    register_index,
)
from repro.api.session import Searcher
from repro.api.specs import IndexSpec, SpecIndexFactory

__all__ = [
    "IndexSpec",
    "IndexDescription",
    "IndexFamily",
    "SpecIndexFactory",
    "SearchOptions",
    "Searcher",
    "StorageSpec",
    "available_indexes",
    "build_index",
    "describe_index",
    "index_family",
    "register_index",
    "save_index",
    "load_index",
    "saved_spec",
    "saved_storage_dtype",
]

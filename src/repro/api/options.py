"""Typed, centrally-validated search options for the public API.

Historically every layer re-validated (or silently ignored) its own slice
of the search knobs: ``k`` in ``index.search``, ``n_jobs``/``executor``
deep inside :func:`repro.engine.batch.execute_batch`, the candidate-budget
pair inside :func:`repro.engine.budget.resolve_budget`, and family-specific
kwargs whenever an index happened to look at them.  Bad combinations (both
budget knobs set, ``n_jobs=0``, a typo'd executor string) surfaced late,
with family-dependent behavior, or not at all.

:class:`SearchOptions` is the one place these combinations are checked.
Every entry point of :mod:`repro.api` — the :class:`~repro.api.Searcher`
session, the CLI, and the eval runner — constructs one, so a bad
configuration fails immediately with a descriptive :class:`ValueError` no
matter which index family it targets.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.engine.batch import EXECUTORS
from repro.storage import StorageSpec
from repro.utils.validation import check_fraction, check_positive_int

#: Option names with a dedicated typed field (everything else is ``extra``).
_FIELD_KWARGS = ("candidate_fraction", "max_candidates", "profile", "exact",
                 "dtype")

#: Storage dtypes the fast execution mode accepts.
_FAST_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class SearchOptions:
    """Declarative, validated configuration of one search workload.

    Parameters
    ----------
    k:
        Top-k size for every query (>= 1).
    candidate_fraction:
        Approximate-search budget as a fraction of the indexed points in
        ``(0, 1]``, or None for exact search.  Mutually exclusive with
        ``max_candidates``.
    max_candidates:
        Approximate-search budget as an absolute candidate count (>= 1),
        or None for exact search.
    n_jobs:
        Worker-pool size for batched execution; None or 1 runs inline.
    executor:
        ``"thread"`` or ``"process"`` — the pool flavor batched execution
        dispatches on.
    block:
        If False, kernel-capable indexes skip their vectorized batch
        kernel and run the scheduled per-query path (results identical;
        useful for benchmarking the two paths against each other).
    profile:
        Collect per-stage wall timers (forces per-query dispatch for the
        tree indexes, whose kernels keep no stage timers).  Incompatible
        with ``exact=False`` — the profiling counters are defined by the
        exact traversal.
    exact:
        True (default) runs the bit-exact engine.  False opts into the
        approximate fast mode on the tree families: reduced-precision
        storage, cross-query GEMM bounds/verification, and compiled
        top-k/leaf kernels, holding recall@k >= 0.999 against the exact
        oracle (see :mod:`repro.engine.fast`).
    dtype:
        Storage dtype for the fast mode (``"float32"``, the default when
        ``exact=False``, or ``"float64"``).  Only meaningful with
        ``exact=False``; setting it alongside ``exact=True`` is an error.
    storage:
        Session-level storage override — anything
        :meth:`repro.storage.StorageSpec.coerce` accepts (``"mmap"``, a
        ``{"backend", "dtype"}`` dict, a spec).  **Not** a per-search
        kwarg: it is consumed by :class:`~repro.api.Searcher`, which
        migrates the index's point arrays once at session start (so a
        process-executor session ships mmap paths to its workers instead
        of pickled array bytes).  Plain ``index.search`` calls ignore it.
    extra:
        Index-family-specific search kwargs forwarded verbatim (e.g.
        ``branch_preference`` for the trees).  Keys must not shadow the
        typed fields above.

    Examples
    --------
    >>> options = SearchOptions(k=10, candidate_fraction=0.1, n_jobs=4)
    >>> options.search_kwargs()
    {'candidate_fraction': 0.1}
    >>> SearchOptions(k=10, candidate_fraction=0.1, max_candidates=50)
    Traceback (most recent call last):
        ...
    ValueError: pass either candidate_fraction or max_candidates, not both
    """

    k: int = 1
    candidate_fraction: Optional[float] = None
    max_candidates: Optional[int] = None
    n_jobs: Optional[int] = None
    executor: str = "thread"
    block: bool = True
    profile: bool = False
    exact: bool = True
    dtype: Optional[str] = None
    storage: Optional[StorageSpec] = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "k", check_positive_int(self.k, name="k")
        )
        object.__setattr__(
            self,
            "candidate_fraction",
            check_fraction(self.candidate_fraction, name="candidate_fraction"),
        )
        if self.max_candidates is not None:
            object.__setattr__(
                self,
                "max_candidates",
                check_positive_int(self.max_candidates, name="max_candidates"),
            )
        if self.candidate_fraction is not None and self.max_candidates is not None:
            raise ValueError(
                "pass either candidate_fraction or max_candidates, not both"
            )
        if self.n_jobs is not None:
            object.__setattr__(
                self, "n_jobs", check_positive_int(self.n_jobs, name="n_jobs")
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if not isinstance(self.block, bool):
            raise TypeError(f"block must be a bool, got {type(self.block)!r}")
        if not isinstance(self.profile, bool):
            raise TypeError(f"profile must be a bool, got {type(self.profile)!r}")
        if not isinstance(self.exact, bool):
            raise TypeError(f"exact must be a bool, got {type(self.exact)!r}")
        if self.dtype is not None:
            if self.exact:
                raise ValueError(
                    "dtype selects the fast mode's storage precision and "
                    "requires exact=False; the exact path always computes "
                    "in float64"
                )
            if self.dtype not in _FAST_DTYPES:
                raise ValueError(
                    f"dtype must be one of {_FAST_DTYPES}, got {self.dtype!r}"
                )
        if not self.exact and self.profile:
            raise ValueError(
                "profile=True requires the exact path (exact=True): the "
                "per-stage profiling counters are defined by the exact "
                "traversal, which the fast mode does not run"
            )
        if self.storage is not None:
            object.__setattr__(
                self, "storage", StorageSpec.coerce(self.storage)
            )
        extra = dict(self.extra or {})
        reserved = set(_FIELD_KWARGS) | {
            "k", "n_jobs", "executor", "block", "storage",
        }
        shadowed = sorted(reserved & set(extra))
        if shadowed:
            raise ValueError(
                "extra must not shadow typed option fields: "
                + ", ".join(shadowed)
            )
        object.__setattr__(self, "extra", extra)

    # --------------------------------------------------------------- derived

    @classmethod
    def from_kwargs(cls, *, k: int = 1, n_jobs: Optional[int] = None,
                    executor: str = "thread", block: bool = True,
                    **search_kwargs: Any) -> "SearchOptions":
        """Build options from a flat kwarg dict (the legacy calling style).

        Knobs with a dedicated field (``candidate_fraction``,
        ``max_candidates``, ``profile``) are lifted out of
        ``search_kwargs``; everything else lands in ``extra``.
        """
        fields: Dict[str, Any] = {}
        for name in _FIELD_KWARGS:
            if name in search_kwargs:
                fields[name] = search_kwargs.pop(name)
        return cls(
            k=k,
            n_jobs=n_jobs,
            executor=executor,
            block=block,
            extra=search_kwargs,
            **fields,
        )

    def replace(self, **changes: Any) -> "SearchOptions":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def search_kwargs(self) -> Dict[str, Any]:
        """Per-search kwargs to forward to ``index.search`` / the kernels.

        Only knobs that deviate from their inert defaults are included, so
        families that do not understand a knob (``LinearScan`` rejects any
        option; the hashing baselines have no ``profile``) are unaffected
        by defaults they never see.
        """
        kwargs: Dict[str, Any] = dict(self.extra)
        if self.candidate_fraction is not None:
            kwargs["candidate_fraction"] = self.candidate_fraction
        if self.max_candidates is not None:
            kwargs["max_candidates"] = self.max_candidates
        if self.profile:
            kwargs["profile"] = True
        if not self.exact:
            kwargs["exact"] = False
            if self.dtype is not None:
                kwargs["dtype"] = self.dtype
        return kwargs

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary (round-trips through :meth:`from_dict`)."""
        out: Dict[str, Any] = {
            "k": self.k,
            "executor": self.executor,
            "block": self.block,
            "profile": self.profile,
            "exact": self.exact,
        }
        if self.dtype is not None:
            out["dtype"] = self.dtype
        if self.candidate_fraction is not None:
            out["candidate_fraction"] = self.candidate_fraction
        if self.max_candidates is not None:
            out["max_candidates"] = self.max_candidates
        if self.n_jobs is not None:
            out["n_jobs"] = self.n_jobs
        if self.storage is not None:
            out["storage"] = self.storage.to_header()
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchOptions":
        """Rebuild options from :meth:`to_dict` output (or a JSON config)."""
        data = dict(data)
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(
                "unknown SearchOptions keys: " + ", ".join(sorted(unknown))
            )
        return cls(**data)

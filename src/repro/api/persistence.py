"""Family-agnostic save/load on top of the versioned payload format.

``save_index`` / ``load_index`` work for **every** index family — static
trees, hashing baselines, and the dynamic/partitioned composites — without
the caller naming a class: the payload envelope
(:mod:`repro.utils.persistence`) carries the index object plus the spec
dictionary it was built from, and version mismatches fail with a clear
error instead of corrupt state.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from os import PathLike

from repro.api.specs import IndexSpec
from repro.storage import sidecar_path, verify_sidecar
from repro.utils.persistence import (
    dump_index_payload,
    load_index_payload,
    read_index_header,
    read_index_spec,
    read_storage_dtype,
)

#: Registry of every key the payload header may carry, mapped to the
#: format version that introduced it.  The header is additive-only —
#: readers back to version 1 must keep loading newer files — so a new
#: key is a two-line change: the write site in
#: :func:`repro.utils.persistence.dump_index_payload` and a row here.
#: The static-analysis rule REP501 cross-checks write sites against this
#: table, so forgetting the row fails ``repro check`` instead of
#: surfacing as format drift in a reader months later.
HEADER_KEY_VERSIONS: Dict[str, int] = {
    "format": 1,
    "format_version": 1,
    "spec": 1,
    "storage_dtype": 1,
    "storage": 1,
    "shards": 1,
}


def save_index(index: Any, path: Union[str, PathLike]) -> None:
    """Persist any index to ``path`` in the versioned payload format.

    Indexes exposing their own ``save`` (every family in the library)
    delegate to it, so class-specific invariants (fitted-state checks)
    still run; other objects are wrapped directly.
    """
    saver = getattr(index, "save", None)
    if callable(saver):
        saver(path)
        return
    dump_index_payload(path, index, spec=getattr(index, "_api_spec", None))


def load_index(
    path: Union[str, PathLike], *, with_spec: bool = False
) -> Union[Any, Tuple[Any, Optional[IndexSpec]]]:
    """Load an index saved by any family's ``save`` (or :func:`save_index`).

    The class is reconstructed from the payload itself — callers never
    name it up front.  With ``with_spec=True`` the return value is a
    ``(index, spec)`` tuple where ``spec`` is the
    :class:`~repro.api.IndexSpec` the index was built from (None for
    indexes constructed directly rather than through the registry).

    Raises
    ------
    ValueError
        If the file was written with an incompatible format version.
    """
    payload = load_index_payload(path)
    if not with_spec:
        return payload["index"]
    spec = payload["spec"]
    return payload["index"], (None if spec is None else IndexSpec.from_dict(spec))


def saved_spec(path: Union[str, PathLike]) -> Optional[IndexSpec]:
    """The spec stamped into a saved index file.

    Reads only the payload's small header frame — inspecting how a
    multi-gigabyte index was configured never unpickles the index itself.
    """
    spec = read_index_spec(path)
    return None if spec is None else IndexSpec.from_dict(spec)


def saved_storage_dtype(path: Union[str, PathLike]) -> Optional[str]:
    """The storage dtype stamped into a saved index file.

    The dtype the persisted point/geometry arrays are stored in (e.g.
    ``"float64"``), read from the payload's small header frame without
    unpickling the index.  Returns None for files saved before the header
    key existed.  The fast mode's reduced-precision arrays are derived
    runtime caches and are never what this reports — a loaded index
    rebuilds them on the first ``exact=False`` search.
    """
    return read_storage_dtype(path)


@dataclass(frozen=True)
class IndexDescription:
    """Header-only description of a saved index (see :func:`describe_index`)."""

    path: str
    format_version: Optional[int]
    spec: Optional[IndexSpec]
    storage: Optional[Dict[str, str]]
    storage_dtype: Optional[str]
    payload_bytes: int
    sidecar_bytes: int
    #: Shard layout of a partitioned payload (``{"count", "sizes"}``);
    #: None for single-index payloads and files saved before the key.
    shards: Optional[Dict[str, Any]] = None

    @property
    def kind(self) -> Optional[str]:
        """The registry kind the index was built as, when spec-stamped."""
        return None if self.spec is None else self.spec.kind

    @property
    def num_shards(self) -> Optional[int]:
        """Partition count of a partitioned payload (None otherwise)."""
        if not self.shards:
            return None
        count = self.shards.get("count")
        return None if count is None else int(count)

    @property
    def shard_sizes(self) -> Optional[list]:
        """Per-shard point counts of a partitioned payload (None otherwise)."""
        if not self.shards:
            return None
        sizes = self.shards.get("sizes")
        return None if sizes is None else [int(size) for size in sizes]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (for the ``repro info`` CLI output)."""
        # repro: allow[REP501] report dict for `repro info`, never written
        # into a payload header; its extra keys are output fields.
        return {
            "path": self.path,
            "format_version": self.format_version,
            "kind": self.kind,
            "spec": None if self.spec is None else self.spec.to_dict(),
            "storage": self.storage,
            "storage_dtype": self.storage_dtype,
            "payload_bytes": self.payload_bytes,
            "sidecar_bytes": self.sidecar_bytes,
            "num_shards": self.num_shards,
            "shard_sizes": self.shard_sizes,
        }


def describe_index(path: Union[str, PathLike]) -> IndexDescription:
    """Describe a saved index from its header frame alone.

    Reads a few hundred bytes — the versioned header plus filesystem
    sizes — and **never unpickles the index or opens its arrays**, so
    inspecting a multi-gigabyte mmap-backed payload is effectively free.
    Legacy raw pickles (pre-envelope files) report
    ``format_version=None`` and all header fields as None.

    Raises
    ------
    ValueError
        If the payload was written with an incompatible format version,
        or its ``.arrays`` mmap sidecar is missing or holds truncated
        arrays (the error names the offending sidecar path — a payload
        copied without its sidecar is not a servable artifact, and
        describing it as one would hide that).
    FileNotFoundError
        If ``path`` does not exist.
    """
    path = Path(path)
    header = read_index_header(path)
    header = {} if header is None else header
    spec = header.get("spec")
    storage = header.get("storage") or {}
    # A header that says mmap promises a sidecar; verify it now so a
    # half-copied artifact fails here, naming the sidecar, instead of as
    # a raw numpy error inside the first search.  Non-mmap payloads skip
    # the existence requirement but still reject truncated leftovers.
    verify_sidecar(path, required=storage.get("backend") == "mmap")
    sidecar = sidecar_path(path)
    sidecar_bytes = 0
    if sidecar.is_dir():
        sidecar_bytes = sum(
            item.stat().st_size for item in sidecar.rglob("*") if item.is_file()
        )
    return IndexDescription(
        path=str(path),
        format_version=header.get("format_version"),
        spec=None if spec is None else IndexSpec.from_dict(spec),
        storage=header.get("storage"),
        storage_dtype=header.get("storage_dtype"),
        payload_bytes=path.stat().st_size,
        sidecar_bytes=sidecar_bytes,
        shards=header.get("shards"),
    )

"""Family-agnostic save/load on top of the versioned payload format.

``save_index`` / ``load_index`` work for **every** index family — static
trees, hashing baselines, and the dynamic/partitioned composites — without
the caller naming a class: the payload envelope
(:mod:`repro.utils.persistence`) carries the index object plus the spec
dictionary it was built from, and version mismatches fail with a clear
error instead of corrupt state.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.api.specs import IndexSpec
from repro.utils.persistence import (
    dump_index_payload,
    load_index_payload,
    read_index_spec,
    read_storage_dtype,
)


def save_index(index: Any, path) -> None:
    """Persist any index to ``path`` in the versioned payload format.

    Indexes exposing their own ``save`` (every family in the library)
    delegate to it, so class-specific invariants (fitted-state checks)
    still run; other objects are wrapped directly.
    """
    saver = getattr(index, "save", None)
    if callable(saver):
        saver(path)
        return
    dump_index_payload(path, index, spec=getattr(index, "_api_spec", None))


def load_index(path, *, with_spec: bool = False):
    """Load an index saved by any family's ``save`` (or :func:`save_index`).

    The class is reconstructed from the payload itself — callers never
    name it up front.  With ``with_spec=True`` the return value is a
    ``(index, spec)`` tuple where ``spec`` is the
    :class:`~repro.api.IndexSpec` the index was built from (None for
    indexes constructed directly rather than through the registry).

    Raises
    ------
    ValueError
        If the file was written with an incompatible format version.
    """
    payload = load_index_payload(path)
    if not with_spec:
        return payload["index"]
    spec = payload["spec"]
    return payload["index"], (None if spec is None else IndexSpec.from_dict(spec))


def saved_spec(path) -> Optional[IndexSpec]:
    """The spec stamped into a saved index file.

    Reads only the payload's small header frame — inspecting how a
    multi-gigabyte index was configured never unpickles the index itself.
    """
    spec = read_index_spec(path)
    return None if spec is None else IndexSpec.from_dict(spec)


def saved_storage_dtype(path) -> Optional[str]:
    """The storage dtype stamped into a saved index file.

    The dtype the persisted point/geometry arrays are stored in (e.g.
    ``"float64"``), read from the payload's small header frame without
    unpickling the index.  Returns None for files saved before the header
    key existed.  The fast mode's reduced-precision arrays are derived
    runtime caches and are never what this reports — a loaded index
    rebuilds them on the first ``exact=False`` search.
    """
    return read_storage_dtype(path)

"""Persistent search sessions: one worker pool, many batch calls.

:func:`repro.engine.batch.execute_batch` — and therefore every index's
``batch_search`` — historically built a fresh worker pool per call and, for
the process executor, re-pickled the entire fitted index into every worker
each time.  For the paper's large-scale sweeps (Fig. 9) and for any serving
deployment answering a stream of small batches, that per-call setup
dominates: pool spawn plus index transfer can cost more than the queries
themselves.

:class:`Searcher` amortizes it.  The session owns one long-lived
thread/process pool sized from its :class:`~repro.api.SearchOptions`;
process workers are initialized exactly once with the fitted index
(reusing the engine's ``_process_worker_init``), and every subsequent
``batch_search`` / ``stream`` call ships only the query chunks plus the
per-call options.  Dispatch, chunking, scheduling, and kernel selection are
the engine's own (``execute_batch`` with the session pool plugged in), so
results **and** work-counter stats are bit-identical to the per-call path
for every index family, executor, and ``n_jobs``.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Union

import numpy as np

from repro.api.options import SearchOptions
from repro.engine.batch import (
    BatchSearchResult,
    _process_worker_init,
    execute_batch,
)

#: SearchOptions fields a call may override (everything typed except the
#: session-fixed pool/storage knobs and the extra mapping itself).
_PER_CALL_FIELDS = frozenset(
    field.name for field in dataclasses.fields(SearchOptions)
) - {"n_jobs", "executor", "storage", "extra"}


class Searcher:
    """A reusable search session over one fitted index.

    Parameters
    ----------
    index:
        Any fitted index — static tree/hashing families as well as the
        dynamic and partitioned composites (anything exposing ``search``).
    options:
        The session's :class:`~repro.api.SearchOptions`; defaults are used
        when omitted.  ``n_jobs``/``executor`` fix the pool for the whole
        session; ``k`` and the per-search knobs are defaults that
        individual calls may override.
    option_overrides:
        Convenience kwargs forwarded to ``options.replace`` (e.g.
        ``Searcher(tree, k=10, n_jobs=4, executor="process")``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Searcher, SearchOptions, build_index
    >>> rng = np.random.default_rng(0)
    >>> tree = build_index("bc_tree", random_state=0).fit(rng.normal(size=(500, 16)))
    >>> queries = rng.normal(size=(8, 17))
    >>> with Searcher(tree, SearchOptions(k=5, n_jobs=2)) as searcher:
    ...     first = searcher.batch_search(queries)
    ...     second = searcher.batch_search(queries)   # same pool, no respawn
    >>> len(first), len(second)
    (8, 8)

    Notes
    -----
    The session is not thread-safe: share the index across sessions, not
    one session across threads.  Exiting the context (or calling
    :meth:`close`) shuts the pool down; a closed session raises on use.

    Per-call search options must be ones the index's ``search`` accepts.
    Families whose ``batch_search`` override adds *batch-level-only* knobs
    (``LinearScan``'s ``vectorized``, ``BallTreeMIPS``'s ``absolute``,
    mirrored by the ``_session_native_batch`` marker) keep those knobs
    working under **thread** sessions, which route through the native
    override; a process session forwards them to ``search`` and fails with
    the same ``TypeError`` the per-query path raises.
    """

    def __init__(
        self,
        index: Any,
        options: Optional[SearchOptions] = None,
        **option_overrides: Any,
    ) -> None:
        if not hasattr(index, "search"):
            raise TypeError(
                f"Searcher needs a fitted index exposing search(); "
                f"got {type(index).__name__}"
            )
        options = options or SearchOptions()
        if option_overrides:
            options = options.replace(**option_overrides)
        self.index = index
        self.options = options
        if options.storage is not None:
            # Migrate once, up front, before any pool exists.  With the
            # mmap backend, process workers then unpickle file *paths* and
            # re-open the maps per worker — the index transfer no longer
            # scales with the data size.  Refuse (rather than silently
            # drop the knob) for indexes without storage support.
            migrate = getattr(index, "to_storage", None)
            if not callable(migrate):
                raise TypeError(
                    f"options.storage is set but {type(index).__name__} "
                    "does not support storage migration (no to_storage)"
                )
            migrate(options.storage)
        requested = 1 if options.n_jobs is None else options.n_jobs
        #: Effective pool size (the request capped at the CPU count), the
        #: same cap ``execute_batch`` applies per call.
        self.workers = min(requested, os.cpu_count() or 1)
        self._pool: Optional[Union[ThreadPoolExecutor, ProcessPoolExecutor]] = None
        self._pool_index_version: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "Searcher":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # The context manager tolerates an explicit close() inside the
        # block; only a second *explicit* close() is a caller bug.
        if not self._closed:
            self.close()

    def close(self) -> None:
        """Shut the session pool down.

        Closing is final: a second explicit ``close()`` raises a
        descriptive :class:`RuntimeError` (a double-close almost always
        means two owners believe they hold the session), as does any
        subsequent ``search``/``batch_search``/``stream`` call.  Exiting
        the ``with`` block after an explicit close is still fine.
        """
        if self._closed:
            raise RuntimeError(
                "this Searcher session is already closed; close() is final "
                "— open a new Searcher to keep searching"
            )
        pool, self._pool = self._pool, None
        self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def _index_version(self) -> Optional[int]:
        """Mutation counter of the session's index (None for foreign types).

        Process workers hold a pickled *snapshot* of the index.  Every
        index family bumps ``_mutation_version`` when its answers can
        change — the dynamic composite on ``insert``/``delete``/``rebuild``
        and every static family on (re)``fit`` — so the session can tell
        its snapshot went stale and must be rebuilt; without this a warm
        pool would keep serving deleted points or pre-refit data.

        A third-party index without the counter returns None and is
        treated as immutable for the lifetime of the session: mutating one
        under an open process session is not detected.  Mutable extension
        families should maintain their own ``_mutation_version`` (see
        :func:`repro.api.register_index`).
        """
        return getattr(self.index, "_mutation_version", None)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "this Searcher session has been closed; its worker pool is "
                "gone — open a new Searcher (or use index.search directly) "
                "to keep searching"
            )

    def _ensure_pool(self) -> Optional[Union[ThreadPoolExecutor, ProcessPoolExecutor]]:
        """The session pool, created lazily on the first parallel call.

        Process workers receive the fitted index through the engine's own
        ``_process_worker_init`` exactly once; ``k`` and the search options
        travel with each task, so one pool serves calls with different
        per-call overrides.  If the index mutated since the pool was
        initialized (see :meth:`_index_version`), the stale pool is torn
        down and respawned with the current state — for every index family
        carrying the mutation counter, mutation between calls costs one
        re-initialization, never a wrong answer.
        """
        self._check_open()
        if self.workers <= 1:
            return None
        if (
            self._pool is not None
            and self.options.executor == "process"
            and self._pool_index_version != self._index_version()
        ):
            stale, self._pool = self._pool, None
            stale.shutdown(wait=True)
        if self._pool is None:
            if self.options.executor == "process":
                self._pool_index_version = self._index_version()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_process_worker_init,
                    initargs=(self.index, None, None),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    # ----------------------------------------------------------------- calls

    def _call_options(
        self, k: Optional[int], overrides: Mapping[str, Any]
    ) -> SearchOptions:
        options = self.options
        changes: Dict[str, Any] = dict(overrides)
        if k is not None:
            changes["k"] = k
        for fixed in ("n_jobs", "executor", "storage"):
            if fixed in changes:
                raise ValueError(
                    f"{fixed} is fixed for the lifetime of a Searcher "
                    "session; open a new session to change it"
                )
        if changes:
            field_changes = {
                name: changes.pop(name) for name in list(changes)
                if name in _PER_CALL_FIELDS
            }
            # A per-call budget override replaces the session's budget
            # outright: switching budget *form* (fraction <-> absolute)
            # must clear the complementary field, or replace() would
            # re-validate with both set and reject the override.
            for given, other in (
                ("candidate_fraction", "max_candidates"),
                ("max_candidates", "candidate_fraction"),
            ):
                if (
                    field_changes.get(given) is not None
                    and other not in field_changes
                ):
                    field_changes[other] = None
            if changes:
                extra = dict(options.extra)
                extra.update(changes)
                field_changes["extra"] = extra
            options = options.replace(**field_changes)
        return options

    def batch_search(
        self, queries: np.ndarray, *, k: Optional[int] = None, **overrides: Any
    ) -> BatchSearchResult:
        """Answer every row of ``queries`` on the session's warm pool.

        Results and per-query/pooled stats are bit-identical to
        ``index.batch_search(queries, ...)`` with the same options — the
        session only removes the per-call pool spawn and index pickling.
        ``k`` and per-search knobs (budget, ``block``, ``profile``,
        family-specific kwargs) may be overridden per call;
        ``n_jobs``/``executor`` are fixed per session.
        """
        self._check_open()
        options = self._call_options(k, overrides)
        if (
            options.executor == "thread"
            and options.block
            and getattr(self.index, "_session_native_batch", False)
        ):
            # Composite indexes with their own vectorized batched path
            # (the partitioned index's per-shard batches + block merge)
            # keep it under thread sessions — a thread pool costs nothing
            # to stand up per call, and the native path is the faster
            # decomposition.  Process sessions stay on the session pool,
            # whose amortized spawn is the whole point.
            return self.index.batch_search(
                queries,
                k=options.k,
                n_jobs=self.workers,
                executor="thread",
                **options.search_kwargs(),
            )
        # Inline batches (one worker, or zero/one query) never touch a
        # pool inside execute_batch, so don't spawn — or respawn after a
        # mutation — one for them.
        rows = 1 if np.ndim(queries) == 1 else int(np.shape(queries)[0])
        pool = self._ensure_pool() if rows > 1 else None
        return execute_batch(
            self.index,
            queries,
            options.k,
            n_jobs=self.workers,
            executor=options.executor,
            block=options.block,
            pool=pool,
            **options.search_kwargs(),
        )

    def stream(
        self,
        query_chunks: Iterable[np.ndarray],
        *,
        k: Optional[int] = None,
        **overrides: Any,
    ) -> Iterator[BatchSearchResult]:
        """Answer an iterable of query chunks, one warm batch per chunk.

        Lazily yields one :class:`BatchSearchResult` per chunk, reusing
        the session pool throughout — the serving-loop shape (bounded
        memory, streaming producers) the per-call API could not express
        without paying pool setup per chunk.  The closed-session check
        runs eagerly at the call (not at the first ``next()``), so a
        closed session fails where the mistake was made; each chunk is
        re-checked as it executes.
        """
        self._check_open()

        def _generate() -> Iterator[BatchSearchResult]:
            for chunk in query_chunks:
                yield self.batch_search(chunk, k=k, **overrides)

        return _generate()

    def search(
        self, query: np.ndarray, *, k: Optional[int] = None, **overrides: Any
    ) -> Any:
        """Single-query convenience: ``index.search`` with session defaults."""
        self._check_open()
        options = self._call_options(k, overrides)
        return self.index.search(query, k=options.k, **options.search_kwargs())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else (
            "warm" if self._pool is not None else "cold"
        )
        return (
            f"Searcher(index={type(self.index).__name__}, "
            f"executor={self.options.executor!r}, workers={self.workers}, "
            f"{state})"
        )

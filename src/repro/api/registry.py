"""String-keyed registry of every index family, and the factory behind it.

The registry maps a stable ``kind`` string to a builder for each index
family the library ships — the paper's trees, the exact and hashing
baselines, the MIPS adapter, and the dynamic / partitioned composites —
so callers construct indexes declaratively::

    from repro.api import build_index

    tree = build_index("bc_tree", leaf_size=64, random_state=7)
    shards = build_index({
        "kind": "partitioned",
        "params": {
            "num_partitions": 8,
            "strategy": "ball",
            "index": {"kind": "bc_tree", "params": {"leaf_size": 64}},
        },
    })

Every index built here is stamped with its spec dictionary (attribute
``_api_spec``), which the persistence envelope
(:mod:`repro.utils.persistence`) writes next to the pickled index so
:func:`repro.api.load_index` can report how any saved file was configured.

Third-party families plug in with :func:`register_index` (usable as a
decorator) and immediately work with specs, JSON configs, the CLI, and
persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.api.specs import (
    NESTED_SPEC_KEY,
    IndexSpec,
    SpecIndexFactory,
    normalize_kind,
)


@dataclass(frozen=True)
class IndexFamily:
    """One registry entry: the builder plus metadata for listings."""

    name: str
    builder: Callable[..., Any]
    description: str = ""
    composite: bool = False


_REGISTRY: Dict[str, IndexFamily] = {}


def register_index(
    name: str,
    builder: Optional[Callable[..., Any]] = None,
    *,
    description: str = "",
    composite: bool = False,
    overwrite: bool = False,
) -> Any:
    """Register an index family under ``name`` (also usable as a decorator).

    Parameters
    ----------
    name:
        Registry key; normalized (lower-case, ``-`` to ``_``) before
        insertion.
    builder:
        Callable accepting the family's constructor kwargs and returning
        an unfitted index.  A class works directly.  When omitted the
        function returns a decorator.
    description:
        One-line summary shown by :func:`available_indexes` listings.
    composite:
        True for families whose ``index`` param nests a sub-index spec.
    overwrite:
        Allow replacing an existing registration (default False: a
        duplicate key raises, catching accidental shadowing).

    Notes
    -----
    Registered indexes work with specs, JSON configs, persistence, and
    :class:`~repro.api.Searcher` sessions.  A family whose fitted state
    can change (refits, inserts, deletes) should maintain an integer
    ``_mutation_version`` attribute bumped on every mutation — process
    sessions use it to invalidate their worker-side snapshot; without it
    the index is assumed immutable while a session is open.
    """
    key = normalize_kind(name)

    def _register(build_callable: Callable[..., Any]) -> Callable[..., Any]:
        if not callable(build_callable):
            raise TypeError(f"builder for {key!r} must be callable")
        if key in _REGISTRY and not overwrite:
            raise ValueError(
                f"index kind {key!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _REGISTRY[key] = IndexFamily(
            name=key,
            builder=build_callable,
            description=description,
            composite=composite,
        )
        return build_callable

    if builder is None:
        return _register
    return _register(builder)


def available_indexes() -> List[str]:
    """Sorted registry keys of every buildable index family."""
    return sorted(_REGISTRY)


def index_family(kind: str) -> IndexFamily:
    """The registry entry for ``kind`` (raising a helpful error if absent)."""
    key = normalize_kind(kind)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; available kinds: "
            + ", ".join(available_indexes())
        ) from None


def build_index(
    spec: Union[str, IndexSpec, Mapping[str, Any]],
    /,
    *,
    memory_budget_mb: Optional[float] = None,
    **params: Any,
) -> Any:
    """Construct an unfitted index from a kind string, spec, or spec dict.

    ``build_index("bc_tree", leaf_size=64)`` and
    ``build_index(IndexSpec("bc_tree", {"leaf_size": 64}))`` are
    equivalent; keyword ``params`` are only accepted with the string form
    (a spec already carries its parameters).  The built index is stamped
    with its spec dictionary for the persistence envelope.

    ``memory_budget_mb`` (accepted with every form, overriding the spec's
    own field when both are given) routes the index's ``fit`` through the
    memory-bounded chunked build — tree families only; a budget on a
    family without ``fit_chunked`` raises a :class:`ValueError` instead of
    being silently dropped.
    """
    if isinstance(spec, str):
        spec = IndexSpec(spec, params, memory_budget_mb=memory_budget_mb)
    else:
        if params:
            raise ValueError(
                "keyword params are only accepted with a kind string; "
                "an IndexSpec/dict already carries its parameters"
            )
        spec = IndexSpec.from_dict(spec)
        if memory_budget_mb is not None:
            spec = IndexSpec(
                spec.kind, spec.params, memory_budget_mb=memory_budget_mb
            )
    family = index_family(spec.kind)
    kwargs = dict(spec.params)
    nested = kwargs.get(NESTED_SPEC_KEY)
    if isinstance(nested, IndexSpec):
        if not family.composite:
            raise ValueError(
                f"index kind {spec.kind!r} does not accept a nested "
                f"{NESTED_SPEC_KEY!r} spec"
            )
        kwargs[NESTED_SPEC_KEY] = nested
    try:
        index = family.builder(**kwargs)
    except TypeError as exc:
        # Re-raise with the registry context: a typo'd param name should
        # name the family, not an anonymous lambda/partial frame.
        raise TypeError(f"building index kind {spec.kind!r}: {exc}") from exc
    if spec.memory_budget_mb is not None:
        if not callable(getattr(index, "fit_chunked", None)):
            raise ValueError(
                f"index kind {spec.kind!r} does not support memory-budgeted "
                "builds (no fit_chunked); memory_budget_mb applies to the "
                "tree families only"
            )
        # fit() consults this attribute and delegates to fit_chunked, so
        # spec-driven callers (CLI, Searcher factories, composites) get
        # the out-of-core build without a second fit entry point.
        index.memory_budget_mb = spec.memory_budget_mb
    # Stamped as a plain dict (not an IndexSpec) so pickled indexes never
    # drag the api layer into their payload.
    try:
        index._api_spec = spec.to_dict()
    except AttributeError:  # pragma: no cover - exotic __slots__ builders
        pass
    return index


# --------------------------------------------------------------- built-ins


def _register_builtins() -> None:
    """Populate the registry with every family the library ships."""
    from repro.core.ball_tree import BallTree
    from repro.core.bc_tree import BCTree
    from repro.core.dynamic import DynamicP2HIndex
    from repro.core.kd_tree import KDTree
    from repro.core.linear_scan import LinearScan
    from repro.core.mips import BallTreeMIPS
    from repro.core.partitioned import PartitionedP2HIndex
    from repro.core.rp_tree import RPTree
    from repro.hashing.angular import AngularHyperplaneHash
    from repro.hashing.fh import FHIndex
    from repro.hashing.multilinear import MultilinearHyperplaneHash
    from repro.hashing.nh import NHIndex

    register_index(
        "ball_tree", BallTree,
        description="Ball-Tree with node-level ball/cone bounds (paper, Alg. 3)",
    )
    register_index(
        "bc_tree", BCTree,
        description="BC-Tree: Ball-Tree plus point-level bounds (paper, Alg. 4-5)",
    )
    register_index(
        "kd_tree", KDTree, description="KD-Tree comparison point"
    )
    register_index(
        "rp_tree", RPTree, description="Random-projection tree comparison point"
    )
    register_index(
        "linear_scan", LinearScan, description="Exact exhaustive baseline"
    )
    register_index(
        "mips", BallTreeMIPS,
        description="Ball-Tree maximum-inner-product adapter",
    )
    register_index(
        "nh", NHIndex, description="Nearest-hyperplane hashing baseline (NH)"
    )
    register_index(
        "fh", FHIndex, description="Furthest-hyperplane hashing baseline (FH)"
    )

    def _multilinear(scheme: str) -> Callable[..., Any]:
        def build(**params: Any) -> Any:
            return MultilinearHyperplaneHash(scheme, **params)
        return build

    def _angular(scheme: str) -> Callable[..., Any]:
        def build(**params: Any) -> Any:
            return AngularHyperplaneHash(scheme, **params)
        return build

    register_index(
        "bh", _multilinear("bh"),
        description="Bilinear hyperplane hashing baseline (BH)",
    )
    register_index(
        "mh", _multilinear("mh"),
        description="Multilinear hyperplane hashing baseline (MH)",
    )
    register_index(
        "ah", _angular("ah"),
        description="Angle hyperplane hashing baseline (AH)",
    )
    register_index(
        "eh", _angular("eh"),
        description="Embedding hyperplane hashing baseline (EH)",
    )

    def _composite(cls: Callable[..., Any]) -> Callable[..., Any]:
        def build(index: Any = None, **params: Any) -> Any:
            if index is not None:
                params["index_factory"] = SpecIndexFactory(index)
            return cls(**params)
        return build

    register_index(
        "dynamic", _composite(DynamicP2HIndex),
        description=(
            "Insert/delete wrapper around a static index "
            "(nested 'index' spec selects the sub-index)"
        ),
        composite=True,
    )
    register_index(
        "partitioned", _composite(PartitionedP2HIndex),
        description=(
            "Sharded index: one sub-index per partition, merged top-k "
            "(nested 'index' spec selects the shard index)"
        ),
        composite=True,
    )


_register_builtins()

"""Declarative index specifications: frozen, hashable, JSON round-trippable.

An :class:`IndexSpec` is the data that *describes* an index — its registry
``kind`` string plus constructor ``params`` — decoupled from the class that
implements it.  Specs serialize to plain dictionaries (and therefore JSON),
survive pickling, and rebuild the index via the registry
(:func:`repro.api.build_index`), which makes them the right currency for
config files, experiment manifests, and the persistence envelope
(:mod:`repro.utils.persistence`).

Composite families (``dynamic``, ``partitioned``) nest a sub-index spec
under the ``index`` param; :class:`SpecIndexFactory` turns that nested spec
into the picklable zero-argument factory the composite classes expect.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

#: The one parameter key whose value is interpreted as a nested spec
#: (used by the composite families).
NESTED_SPEC_KEY = "index"


def normalize_kind(kind: str) -> str:
    """Canonical registry key: lower-case with ``-`` folded to ``_``."""
    if not isinstance(kind, str) or not kind.strip():
        raise ValueError(f"index kind must be a non-empty string, got {kind!r}")
    return kind.strip().lower().replace("-", "_")


def _coerce_param(value: Any) -> Any:
    """Fold numpy scalars (the natural output of sweeps) to native types.

    Keeps the spec's "hashable, JSON round-trippable" contract honest for
    params like ``leaf_size=np.int64(64)``; containers are coerced
    recursively (tuples become lists, matching what a JSON round trip
    would produce anyway).  Other exotic values pass through untouched and
    simply aren't JSON-serializable — same as before.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: _coerce_param(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce_param(item) for item in value]
    return value


@dataclass(frozen=True)
class IndexSpec:
    """A declarative description of one index configuration.

    Parameters
    ----------
    kind:
        Registry key of the index family (``"bc_tree"``, ``"nh"``,
        ``"partitioned"``, ...); hyphens and case are normalized, so the
        CLI's ``"bc-tree"`` spelling works too.
    params:
        Constructor keyword arguments for the family.  For the composite
        families the ``index`` param may be a nested :class:`IndexSpec`
        (or its dictionary form), describing the sub-index each
        shard/rebuild constructs.
    memory_budget_mb:
        Optional build-time memory budget in MiB.  Indexes built from a
        budgeted spec route ``fit`` through the memory-bounded chunked
        build (:meth:`~repro.core.index_base.LeafStoredPointsMixin.fit_chunked`)
        instead of the resident one — tree families only; building a
        budgeted spec of any other family raises.  It is a *build* knob,
        not a constructor parameter, so it lives next to ``params``
        rather than inside them.

    Examples
    --------
    >>> spec = IndexSpec("bc_tree", {"leaf_size": 64, "random_state": 7})
    >>> spec.to_dict()
    {'kind': 'bc_tree', 'params': {'leaf_size': 64, 'random_state': 7}}
    >>> IndexSpec.from_dict(spec.to_dict()) == spec
    True
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    memory_budget_mb: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", normalize_kind(self.kind))
        if self.memory_budget_mb is not None:
            budget = self.memory_budget_mb
            if isinstance(budget, np.generic):
                budget = budget.item()
            if (
                isinstance(budget, bool)
                or not isinstance(budget, (int, float))
                or budget <= 0
            ):
                raise ValueError(
                    f"memory_budget_mb must be a positive number, "
                    f"got {self.memory_budget_mb!r}"
                )
            object.__setattr__(self, "memory_budget_mb", float(budget))
        params = dict(self.params or {})
        for name in params:
            if not isinstance(name, str):
                raise ValueError(
                    f"spec params must have string keys, got {name!r}"
                )
        nested = params.get(NESTED_SPEC_KEY)
        if isinstance(nested, Mapping):
            params[NESTED_SPEC_KEY] = IndexSpec.from_dict(nested)
        params = {
            name: (
                value if isinstance(value, IndexSpec)
                else _coerce_param(value)
            )
            for name, value in params.items()
        }
        # MappingProxy keeps the frozen dataclass actually immutable while
        # still pickling (via __reduce__ below) and comparing like a dict.
        object.__setattr__(self, "params", MappingProxyType(params))

    # Frozen dataclasses with a MappingProxy field need explicit pickle
    # support (proxies are not picklable); rebuild from the dict form.
    def __reduce__(self) -> tuple:
        return (_spec_from_dict, (self.to_dict(),))

    def __hash__(self) -> int:
        # Derived from the same values __eq__ compares (dict equality, so
        # 64 and 64.0 stay interchangeable); unhashable param values raise
        # the standard TypeError, exactly like a tuple containing them.
        return hash(
            (self.kind, _freeze(dict(self.params)), self.memory_budget_mb)
        )

    # ----------------------------------------------------------- round trips

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dictionary form (nested specs become nested dicts).

        ``memory_budget_mb`` is included only when set, so pre-budget
        round trips (and files written by older versions) are unchanged.
        """
        params: Dict[str, Any] = {}
        for name, value in self.params.items():
            params[name] = (
                value.to_dict() if isinstance(value, IndexSpec) else value
            )
        out: Dict[str, Any] = {"kind": self.kind, "params": params}
        if self.memory_budget_mb is not None:
            out["memory_budget_mb"] = self.memory_budget_mb
        return out

    @classmethod
    def from_dict(cls, data: Union[Mapping[str, Any], "IndexSpec"]) -> "IndexSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a JSON config).

        Accepts ``{"kind": ..., "params": {...}}`` as well as the compact
        form ``{"kind": ..., <param>: ...}`` where every non-``kind`` key
        is a parameter.
        """
        if isinstance(data, IndexSpec):
            return data
        if not isinstance(data, Mapping):
            raise ValueError(
                f"an index spec must be a mapping, got {type(data).__name__}"
            )
        if "kind" not in data:
            raise ValueError("an index spec requires a 'kind' key")
        data = dict(data)
        kind = data.pop("kind")
        memory_budget_mb = data.pop("memory_budget_mb", None)
        params = data.pop("params", None)
        if params is None:
            params = data
        elif data:
            raise ValueError(
                "pass parameters either under 'params' or inline, not both: "
                + ", ".join(sorted(data))
            )
        return cls(kind, params, memory_budget_mb=memory_budget_mb)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "IndexSpec":
        """Deserialize from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ---------------------------------------------------------------- build

    def build(self) -> Any:
        """Construct the (unfitted) index this spec describes."""
        from repro.api.registry import build_index

        return build_index(self)


def _spec_from_dict(data: Mapping[str, Any]) -> "IndexSpec":
    """Module-level unpickling hook for :class:`IndexSpec`."""
    return IndexSpec.from_dict(data)


def _freeze(value: Any) -> Any:
    """A hashable mirror of ``value`` that preserves equality semantics.

    Mappings become frozensets of frozen items and sequences become
    tuples, so two specs that compare equal (dict equality) always hash
    equal — which ``json.dumps``-based hashing would violate for pairs
    like ``64`` vs ``64.0``.
    """
    if isinstance(value, Mapping):
        return frozenset((key, _freeze(item)) for key, item in value.items())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


class SpecIndexFactory:
    """Picklable zero-argument factory building a fresh index from a spec.

    The composite indexes (:class:`~repro.core.dynamic.DynamicP2HIndex`,
    :class:`~repro.core.partitioned.PartitionedP2HIndex`) call their
    ``index_factory`` at every rebuild / per shard; this class is the
    declarative counterpart of the ad-hoc lambdas — equal specs build
    equal indexes, and the factory survives ``save``/``load``.
    """

    def __init__(self, spec: Union[IndexSpec, Mapping[str, Any], str]) -> None:
        if isinstance(spec, str):
            spec = IndexSpec(spec)
        self.spec = IndexSpec.from_dict(spec)

    def __call__(self) -> Any:
        return self.spec.build()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SpecIndexFactory) and self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SpecIndexFactory({self.spec!r})"

"""Registry of the 16 benchmark data sets and their synthetic surrogates.

Table II of the paper lists 16 real-world data sets from 96 to 5,408
dimensions and up to 100 million points.  Those data sets cannot ship with
this repository (and the two 100M-point sets would not fit a laptop), so
the registry pairs every paper data set with:

* the paper's original ``n`` and ``d`` (kept for documentation and for the
  Table II benchmark output), and
* a *surrogate* configuration — which synthetic generator to use, the exact
  paper dimension ``d``, and a scaled-down ``n`` — that exercises the same
  code paths at laptop scale.

``load_dataset(name)`` materializes the surrogate deterministically (the
seed is derived from the data-set name), so every benchmark and test sees
the same points.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.synthetic import GENERATORS
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper data set and its synthetic surrogate."""

    name: str
    paper_points: int
    paper_dim: int
    data_type: str
    generator: str
    surrogate_points: int
    generator_kwargs: Dict = field(default_factory=dict)
    large_scale: bool = False

    @property
    def dim(self) -> int:
        """The data dimension (same as the paper's)."""
        return self.paper_dim


@dataclass
class Dataset:
    """A materialized surrogate data set."""

    spec: DatasetSpec
    points: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])


def _spec(
    name: str,
    paper_points: int,
    paper_dim: int,
    data_type: str,
    generator: str,
    surrogate_points: int,
    large_scale: bool = False,
    **generator_kwargs,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_points=paper_points,
        paper_dim=paper_dim,
        data_type=data_type,
        generator=generator,
        surrogate_points=surrogate_points,
        generator_kwargs=generator_kwargs,
        large_scale=large_scale,
    )


# The 16 data sets of Table II.  Surrogate sizes are scaled down so a full
# benchmark sweep completes on a laptop; dimensions match the paper exactly.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("Music", 1_000_000, 100, "Rating", "heavy_tailed", 20_000,
              tail_exponent=4.0, num_clusters=20),
        _spec("GloVe", 1_183_514, 100, "Text", "low_rank_embedding", 20_000,
              rank=30, num_clusters=25),
        _spec("Sift", 985_462, 128, "Image", "clustered_gaussian", 20_000,
              num_clusters=64),
        _spec("UKBench", 1_097_907, 128, "Image", "clustered_gaussian", 20_000,
              num_clusters=32, cluster_radius=4.0),
        _spec("Tiny", 1_000_000, 384, "Image", "clustered_gaussian", 10_000,
              num_clusters=50, cluster_radius=5.0),
        _spec("Msong", 992_272, 420, "Audio", "correlated_gaussian", 10_000,
              correlation=0.6, num_factors=6, num_clusters=30),
        _spec("NUSW", 268_643, 500, "Image", "low_rank_embedding", 8_000,
              rank=50, num_clusters=30),
        _spec("Cifar-10", 50_000, 512, "Image", "clustered_gaussian", 8_000,
              num_clusters=10),
        _spec("Sun", 79_106, 512, "Image", "clustered_gaussian", 8_000,
              num_clusters=20),
        _spec("LabelMe", 181_093, 512, "Image", "low_rank_embedding", 8_000,
              rank=64, num_clusters=20),
        _spec("Gist", 982_694, 960, "Image", "correlated_gaussian", 5_000,
              correlation=0.4, num_factors=8),
        _spec("Enron", 94_987, 1_369, "Text", "low_rank_embedding", 4_000,
              rank=100, noise=0.1, num_clusters=15),
        _spec("Trevi", 100_900, 4_096, "Image", "low_rank_embedding", 2_000,
              rank=128, num_clusters=15),
        _spec("P53", 31_153, 5_408, "Biology", "heavy_tailed", 1_500,
              tail_exponent=5.0, num_clusters=8),
        _spec("Deep100M", 100_000_000, 96, "Image", "clustered_gaussian",
              100_000, large_scale=True, num_clusters=200),
        _spec("Sift100M", 99_986_452, 128, "Image", "clustered_gaussian",
              100_000, large_scale=True, num_clusters=200),
    ]
}


def available_datasets(*, include_large_scale: bool = True) -> List[str]:
    """Names of all registered data sets (optionally excluding the 100M pair)."""
    return [
        name
        for name, spec in DATASETS.items()
        if include_large_scale or not spec.large_scale
    ]


def _seed_for(name: str) -> int:
    """Deterministic seed derived from the data-set name.

    Uses a stable digest (not Python's randomized ``hash``) so surrogates are
    identical across processes and interpreter sessions.
    """
    digest = hashlib.sha256(f"repro-dataset:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def load_dataset(
    name: str,
    *,
    num_points: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dataset:
    """Materialize the synthetic surrogate of a paper data set.

    Parameters
    ----------
    name:
        Data-set name as in Table II (case-insensitive); e.g. ``"Cifar-10"``.
    num_points:
        Optional override of the surrogate size (useful for quick tests).
    seed:
        Optional seed override.  By default a stable seed is derived from the
        data-set name so repeated loads return identical points.

    Returns
    -------
    Dataset
        The surrogate points together with the original spec.
    """
    key = None
    for registered in DATASETS:
        if registered.lower() == str(name).lower():
            key = registered
            break
    if key is None:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; available: {known}")
    spec = DATASETS[key]
    generator = GENERATORS[spec.generator]
    size = spec.surrogate_points if num_points is None else int(num_points)
    if size < 1:
        raise ValueError(f"num_points must be >= 1, got {size}")
    rng = ensure_rng(_seed_for(key) if seed is None else seed)
    points = generator(size, spec.paper_dim, rng=rng, **spec.generator_kwargs)
    return Dataset(spec=spec, points=points)

"""Synthetic point-cloud generators.

The paper's evaluation uses 16 real-world data sets (Table II) that cannot
be redistributed with this repository.  The generators here produce
surrogates that exercise the same code paths: dense real vectors whose
cluster structure, intrinsic dimension, and norm distribution imitate the
data "types" in Table II (image descriptors, text embeddings, audio
features, ratings, biology assays).

A property all real descriptor data sets share — and the property that
makes ball-bound pruning possible at all — is that their *intrinsic*
dimension is far lower than the ambient dimension: points form clusters (or
low-dimensional sheets) whose radius does not grow with the ambient
dimension, while the clusters themselves are spread widely.  The generators
therefore parameterize clusters by their **radius** (per-coordinate noise is
``radius / sqrt(dim)``), so the ratio between cluster radius and cluster
separation — the quantity the node-level ball bound cares about — is
controlled explicitly and stays comparable across dimensions, exactly as it
does in the paper's real data.

Each generator returns a plain ``(n, d)`` float matrix of *raw*
(non-augmented) points.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


def _cluster_centers(
    num_clusters: int, dim: int, center_spread: float, rng: np.random.Generator
) -> np.ndarray:
    """Cluster centers with per-coordinate standard deviation ``center_spread``."""
    return rng.normal(scale=center_spread, size=(num_clusters, dim))


def clustered_gaussian(
    num_points: int,
    dim: int,
    *,
    num_clusters: int = 10,
    cluster_radius: float = 3.0,
    center_spread: float = 10.0,
    rng=None,
) -> np.ndarray:
    """Mixture of Gaussian clusters with dimension-independent radius.

    This is the workhorse surrogate for image-descriptor data sets
    (Sift-like, Cifar-like, UKBench-like): distinct modes whose radius
    (``cluster_radius``) is much smaller than the typical distance between a
    cluster center and a random hyperplane (``~ center_spread``), which is
    what gives the tree bounds their pruning power.

    Parameters
    ----------
    num_points, dim:
        Output shape ``(num_points, dim)``.
    num_clusters:
        Number of mixture components.
    cluster_radius:
        Approximate Euclidean radius of each cluster (per-coordinate noise is
        ``cluster_radius / sqrt(dim)``).
    center_spread:
        Per-coordinate standard deviation of the cluster centers.
    rng:
        Seed or generator.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim")
    num_clusters = check_positive_int(num_clusters, name="num_clusters")
    if cluster_radius <= 0 or center_spread <= 0:
        raise ValueError("cluster_radius and center_spread must be positive")
    generator = ensure_rng(rng)
    centers = _cluster_centers(num_clusters, dim, center_spread, generator)
    assignments = generator.integers(0, num_clusters, size=num_points)
    noise = generator.normal(
        scale=cluster_radius / np.sqrt(dim), size=(num_points, dim)
    )
    return centers[assignments] + noise


def low_rank_embedding(
    num_points: int,
    dim: int,
    *,
    rank: int = 20,
    num_clusters: int = 20,
    cluster_radius: float = 2.0,
    center_spread: float = 10.0,
    noise: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Clustered points on a low-dimensional subspace plus ambient noise.

    Learned embeddings (GloVe-like, LabelMe-like, Enron-like, Trevi-like)
    concentrate near a low-dimensional subspace and exhibit semantic cluster
    structure.  The generator draws clustered factors in ``rank`` dimensions,
    maps them through an orthonormal basis into the ambient space (so
    pairwise geometry is preserved), and adds small isotropic noise.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim")
    rank = min(check_positive_int(rank, name="rank"), dim)
    generator = ensure_rng(rng)
    factors = clustered_gaussian(
        num_points,
        rank,
        num_clusters=num_clusters,
        cluster_radius=cluster_radius,
        center_spread=center_spread,
        rng=generator,
    )
    # Orthonormal basis of the rank-dimensional subspace in ambient space.
    random_matrix = generator.normal(size=(dim, rank))
    basis, _ = np.linalg.qr(random_matrix)
    ambient_noise = generator.normal(
        scale=noise / np.sqrt(dim), size=(num_points, dim)
    )
    return factors @ basis.T + ambient_noise


def correlated_gaussian(
    num_points: int,
    dim: int,
    *,
    correlation: float = 0.5,
    num_factors: int = 4,
    num_clusters: int = 1,
    scale: float = 10.0,
    rng=None,
) -> np.ndarray:
    """Strongly correlated features driven by a few shared latent factors.

    Imitates audio / spectral feature sets (Msong-like, Gist-like) where
    neighbouring coordinates move together: a handful of latent factors with
    variance ``correlation * scale^2`` spread the data along a few
    directions, and the remaining variance ``(1 - correlation) * scale^2`` is
    isotropic noise whose total radius does not grow with the dimension.
    When ``num_clusters > 1`` the factor scores themselves are clustered,
    adding the mode structure audio collections exhibit; ``num_clusters=1``
    (default) keeps a single diffuse mode, which is the regime where the
    tree bounds prune least — matching the data sets on which the paper
    reports the smallest gains (Tiny, Gist).
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim")
    num_factors = min(check_positive_int(num_factors, name="num_factors"), dim)
    num_clusters = check_positive_int(num_clusters, name="num_clusters")
    if not 0.0 <= correlation < 1.0:
        raise ValueError(f"correlation must be in [0, 1), got {correlation}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    generator = ensure_rng(rng)
    loadings = generator.normal(size=(dim, num_factors))
    loadings, _ = np.linalg.qr(loadings)
    factor_scale = scale * np.sqrt(correlation)
    if num_clusters > 1:
        factors = clustered_gaussian(
            num_points,
            num_factors,
            num_clusters=num_clusters,
            cluster_radius=factor_scale * 0.3,
            center_spread=factor_scale,
            rng=generator,
        )
    else:
        factors = generator.normal(
            scale=factor_scale, size=(num_points, num_factors)
        )
    noise = generator.normal(
        scale=scale * np.sqrt(1.0 - correlation) / np.sqrt(dim),
        size=(num_points, dim),
    )
    return factors @ loadings.T + noise


def heavy_tailed(
    num_points: int,
    dim: int,
    *,
    tail_exponent: float = 3.0,
    num_clusters: int = 10,
    cluster_radius: float = 3.0,
    center_spread: float = 8.0,
    rng=None,
) -> np.ndarray:
    """Clustered data with heavy-tailed per-point magnitudes.

    Rating-style data (Music-like) and biology assays (P53-like) contain a
    few very large vectors.  The generator multiplies clustered Gaussian
    points by Student-t style radial factors, producing the wide norm
    distribution that stresses FH's norm partitions and the cone bound's
    dependence on ``||x||``.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim")
    if tail_exponent <= 2.0:
        raise ValueError(
            f"tail_exponent must be > 2 for finite variance, got {tail_exponent}"
        )
    generator = ensure_rng(rng)
    base = clustered_gaussian(
        num_points,
        dim,
        num_clusters=num_clusters,
        cluster_radius=cluster_radius,
        center_spread=center_spread,
        rng=generator,
    )
    chi_square = generator.chisquare(tail_exponent, size=(num_points, 1))
    radial = 1.0 / np.sqrt(chi_square / tail_exponent)
    return base * radial


def uniform_hypercube(
    num_points: int,
    dim: int,
    *,
    low: float = -1.0,
    high: float = 1.0,
    rng=None,
) -> np.ndarray:
    """Uniform points in an axis-aligned hypercube.

    An unstructured control: it has no cluster structure, so the tree bounds
    prune little — useful for documenting when the method does *not* help.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim")
    if high <= low:
        raise ValueError(f"high must exceed low, got [{low}, {high}]")
    generator = ensure_rng(rng)
    return generator.uniform(low, high, size=(num_points, dim))


GENERATORS = {
    "clustered_gaussian": clustered_gaussian,
    "correlated_gaussian": correlated_gaussian,
    "low_rank_embedding": low_rank_embedding,
    "heavy_tailed": heavy_tailed,
    "uniform_hypercube": uniform_hypercube,
}

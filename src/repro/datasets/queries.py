"""Hyperplane query generators.

The paper follows Huang et al. (SIGMOD 2021) and generates 100 random
hyperplane queries per data set.  We provide three generators that together
cover the protocols used in the P2HNNS literature and the paper's
motivating applications:

* :func:`random_hyperplane_queries` — Gaussian normal vector, offset chosen
  so the hyperplane passes near a randomly chosen data point (so queries cut
  through the data and have non-trivial nearest neighbors).
* :func:`bisector_hyperplane_queries` — the perpendicular bisector of two
  randomly chosen data points (a hyperplane that provably separates data).
* :func:`svm_like_hyperplane_queries` — a least-squares separating
  hyperplane between two random clusters of points, imitating an SVM
  decision boundary in the active-learning application.

Every generator returns an array of shape ``(num_queries, d)`` where the
first ``d-1`` coordinates are the hyperplane normal and the last one is the
offset — the query layout every index in this library expects.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_points_matrix, check_positive_int


def random_hyperplane_queries(
    points: np.ndarray,
    num_queries: int = 100,
    *,
    protocol: str = "gaussian",
    offset_jitter: float = 0.1,
    rng=None,
) -> np.ndarray:
    """Random hyperplane queries.

    Two protocols are supported:

    * ``"gaussian"`` (default, the protocol of the paper and of Huang et al.
      SIGMOD 2021): all ``d`` coefficients are drawn i.i.d. from ``N(0, 1)``
      and then rescaled so the normal vector has unit norm.  The resulting
      offsets are tiny (``~ 1/sqrt(d-1)``), so hyperplanes pass near the
      origin and ``||q|| ~ 1`` — the regime in which the node-level ball
      bound (Theorem 2) is effective.
    * ``"anchored"``: the normal is Gaussian but the offset is chosen so the
      hyperplane passes through a randomly chosen data point (perturbed by
      ``offset_jitter`` times the data scale).  Such queries have large
      offsets, which inflate ``||q||`` and weaken the paper's bounds — kept
      as an option to study that sensitivity.

    Parameters
    ----------
    points:
        Raw data points of shape ``(n, d-1)`` the queries should target.
    num_queries:
        Number of hyperplanes to generate.
    protocol:
        ``"gaussian"`` or ``"anchored"``.
    offset_jitter:
        Relative perturbation of the offset (anchored protocol only).
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Queries of shape ``(num_queries, d)``.
    """
    pts = check_points_matrix(points, name="points")
    num_queries = check_positive_int(num_queries, name="num_queries")
    if protocol not in ("gaussian", "anchored"):
        raise ValueError(
            f"protocol must be 'gaussian' or 'anchored', got {protocol!r}"
        )
    generator = ensure_rng(rng)
    n, raw_dim = pts.shape

    normals = generator.normal(size=(num_queries, raw_dim))
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    if protocol == "gaussian":
        offsets = generator.normal(size=num_queries) / norms[:, 0]
        normals = normals / norms
        return np.hstack([normals, offsets[:, None]])

    normals = normals / norms
    anchors = pts[generator.integers(0, n, size=num_queries)]
    scale = float(np.mean(np.linalg.norm(pts - pts.mean(axis=0), axis=1)))
    jitter = generator.normal(scale=offset_jitter * max(scale, 1e-12),
                              size=num_queries)
    offsets = -np.einsum("ij,ij->i", normals, anchors) + jitter
    return np.hstack([normals, offsets[:, None]])


def bisector_hyperplane_queries(
    points: np.ndarray,
    num_queries: int = 100,
    *,
    rng=None,
) -> np.ndarray:
    """Perpendicular-bisector hyperplanes of random point pairs."""
    pts = check_points_matrix(points, name="points", min_rows=2)
    num_queries = check_positive_int(num_queries, name="num_queries")
    generator = ensure_rng(rng)
    n, raw_dim = pts.shape

    queries = np.empty((num_queries, raw_dim + 1), dtype=np.float64)
    for row in range(num_queries):
        first, second = generator.choice(n, size=2, replace=False)
        a, b = pts[first], pts[second]
        normal = a - b
        norm = float(np.linalg.norm(normal))
        if norm < 1e-12:
            # Degenerate pair (duplicate points): fall back to a random normal.
            normal = generator.normal(size=raw_dim)
            norm = float(np.linalg.norm(normal))
        normal = normal / norm
        midpoint = (a + b) / 2.0
        queries[row, :raw_dim] = normal
        queries[row, raw_dim] = -float(normal @ midpoint)
    return queries


def svm_like_hyperplane_queries(
    points: np.ndarray,
    num_queries: int = 100,
    *,
    group_size: int = 32,
    regularization: float = 1e-3,
    rng=None,
) -> np.ndarray:
    """Least-squares separating hyperplanes between two random point groups.

    Imitates the decision boundary of a linear classifier trained on a small
    labelled pool — the query distribution of the pool-based active learning
    application that motivates P2HNNS (Section I).
    """
    pts = check_points_matrix(points, name="points", min_rows=4)
    num_queries = check_positive_int(num_queries, name="num_queries")
    group_size = check_positive_int(group_size, name="group_size")
    generator = ensure_rng(rng)
    n, raw_dim = pts.shape
    group_size = min(group_size, max(2, n // 2))

    queries = np.empty((num_queries, raw_dim + 1), dtype=np.float64)
    for row in range(num_queries):
        chosen = generator.choice(n, size=2 * group_size, replace=False)
        positive = pts[chosen[:group_size]]
        negative = pts[chosen[group_size:]]
        features = np.vstack([positive, negative])
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        labels = np.concatenate(
            [np.ones(group_size), -np.ones(group_size)]
        )
        gram = design.T @ design + regularization * np.eye(raw_dim + 1)
        weights = np.linalg.solve(gram, design.T @ labels)
        normal = weights[:raw_dim]
        norm = float(np.linalg.norm(normal))
        if norm < 1e-12:
            normal = generator.normal(size=raw_dim)
            norm = float(np.linalg.norm(normal))
            weights[raw_dim] = 0.0
        queries[row, :raw_dim] = normal / norm
        queries[row, raw_dim] = weights[raw_dim] / norm
    return queries

"""Data-set preprocessing transforms.

The paper's central argument against the older hyperplane hashing schemes
(AH/EH/BH/MH) is that they require data on the unit hypersphere, while the
applications it targets (clustering, dimension reduction) cannot normalize
their data.  These transforms make that comparison reproducible:

* :func:`unit_normalize` puts data in the regime where the angular hashes
  work (and where the paper says they are competitive);
* :func:`center` / :func:`standardize` / :func:`pca_project` are the usual
  preprocessing steps of the real data sets (GloVe is centered, Gist is
  whitened, ...), so surrogates can be shaped to match;
* :class:`TransformPipeline` applies a sequence of transforms to data while
  exposing the matching transformation of *hyperplane queries*, so a query
  generated in the original space can be answered in the transformed space
  (and vice versa) without changing the nearest-neighbor ranking checks used
  by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_points_matrix, check_positive_int


def unit_normalize(points: np.ndarray) -> np.ndarray:
    """Scale every point to unit l2 norm (zero rows are left unchanged)."""
    pts = check_points_matrix(points, name="points")
    norms = np.linalg.norm(pts, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return pts / norms


def center(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Subtract the mean; returns ``(centered_points, mean)``."""
    pts = check_points_matrix(points, name="points")
    mean = pts.mean(axis=0)
    return pts - mean, mean


def standardize(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Center and scale every coordinate to unit variance.

    Returns ``(standardized_points, mean, scale)``; constant coordinates get
    a scale of 1 so the transform is always invertible.
    """
    pts = check_points_matrix(points, name="points")
    mean = pts.mean(axis=0)
    scale = pts.std(axis=0)
    scale[scale == 0.0] = 1.0
    return (pts - mean) / scale, mean, scale


def pca_project(
    points: np.ndarray, num_components: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project points onto their top principal components.

    Parameters
    ----------
    points:
        Data matrix ``(n, d)``.
    num_components:
        Number of components to keep (``<= d``).

    Returns
    -------
    (projected, components, mean)
        ``projected`` is ``(n, num_components)``, ``components`` is the
        ``(d, num_components)`` orthonormal basis, ``mean`` the original mean.
    """
    pts = check_points_matrix(points, name="points")
    num_components = check_positive_int(num_components, name="num_components")
    if num_components > pts.shape[1]:
        raise ValueError(
            f"num_components={num_components} exceeds the data dimension "
            f"{pts.shape[1]}"
        )
    mean = pts.mean(axis=0)
    centered = pts - mean
    # SVD of the centered matrix gives the principal directions in V.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:num_components].T
    return centered @ components, components, mean


@dataclass
class AffineTransform:
    """An affine map ``p -> (p - shift) @ matrix`` applied to raw points.

    The matching query transform keeps the P2H *ranking* intact whenever the
    map is invertible on the subspace the data occupies: a hyperplane
    ``{p : <n, p> + b = 0}`` in the original space becomes
    ``{z : <n', z> + b' = 0}`` with ``n' = pinv(matrix) @ n`` and
    ``b' = b + <n, shift>`` in the transformed space.
    """

    matrix: np.ndarray
    shift: np.ndarray

    def apply_points(self, points: np.ndarray) -> np.ndarray:
        pts = check_points_matrix(points, name="points")
        return (pts - self.shift) @ self.matrix

    def apply_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        normal, offset = query[:-1], float(query[-1])
        new_normal = np.linalg.pinv(self.matrix) @ normal
        new_offset = offset + float(normal @ self.shift)
        return np.append(new_normal, new_offset)


@dataclass
class TransformPipeline:
    """A reusable preprocessing pipeline fitted on one data set.

    Parameters
    ----------
    steps:
        Sequence of step names, applied in order.  Supported steps:
        ``"center"``, ``"standardize"``, ``"unit"`` (unit-normalize, must be
        last because it is not affine), ``"pca:<k>"`` (keep k components).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets.transforms import TransformPipeline
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(100, 8)) * 3 + 5
    >>> pipeline = TransformPipeline(["center", "standardize"]).fit(data)
    >>> transformed = pipeline.transform(data)
    >>> bool(np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9))
    True
    """

    steps: Sequence[str]
    _affines: List[AffineTransform] = None
    _unit_last: bool = False
    _fitted: bool = False

    def fit(self, points: np.ndarray) -> "TransformPipeline":
        """Fit every step's parameters on ``points``."""
        pts = check_points_matrix(points, name="points")
        self._affines = []
        self._unit_last = False
        current = pts
        for position, step in enumerate(self.steps):
            step = str(step).lower()
            if step == "unit":
                if position != len(self.steps) - 1:
                    raise ValueError("'unit' must be the last pipeline step")
                self._unit_last = True
                continue
            if step == "center":
                _, mean = center(current)
                affine = AffineTransform(
                    matrix=np.eye(current.shape[1]), shift=mean
                )
            elif step == "standardize":
                _, mean, scale = standardize(current)
                affine = AffineTransform(matrix=np.diag(1.0 / scale), shift=mean)
            elif step.startswith("pca:"):
                num_components = int(step.split(":", 1)[1])
                _, components, mean = pca_project(current, num_components)
                affine = AffineTransform(matrix=components, shift=mean)
            else:
                raise ValueError(
                    f"unknown transform step {step!r}; expected 'center', "
                    "'standardize', 'unit', or 'pca:<k>'"
                )
            current = affine.apply_points(current)
            self._affines.append(affine)
        self._fitted = True
        return self

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the fitted pipeline to raw points."""
        self._check_fitted()
        current = check_points_matrix(points, name="points")
        for affine in self._affines:
            current = affine.apply_points(current)
        if self._unit_last:
            current = unit_normalize(current)
        return current

    def transform_query(self, query: np.ndarray) -> np.ndarray:
        """Map a hyperplane query into the transformed space.

        Only defined for affine pipelines (no ``"unit"`` step): unit
        normalization is point-dependent, so there is no single hyperplane in
        the normalized space equivalent to the original query.
        """
        self._check_fitted()
        if self._unit_last:
            raise ValueError(
                "query transformation is undefined for pipelines ending in 'unit'"
            )
        current = np.asarray(query, dtype=np.float64)
        for affine in self._affines:
            current = affine.apply_query(current)
        return current

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        """Convenience: :meth:`fit` followed by :meth:`transform`."""
        return self.fit(points).transform(points)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("TransformPipeline must be fitted before use")

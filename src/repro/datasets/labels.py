"""Labeled synthetic workloads for the application layers.

The paper's motivating applications (active learning with SVMs, maximum
margin clustering, large-margin dimensionality reduction) all need *labeled*
or *clusterable* data, which the plain Table II surrogates do not provide.
These generators produce two-class point sets with a controllable true
margin and noise level, so the application examples and tests can state
exact expectations ("the learner recovers ≥ x% accuracy", "the closest
point to the true separator is at distance ≈ margin").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int


@dataclass
class LabeledDataset:
    """A two-class point set together with its generating hyperplane."""

    points: np.ndarray            # (n, d) raw points
    labels: np.ndarray            # (n,) in {-1.0, +1.0}
    separator: np.ndarray         # (d + 1,) true hyperplane (normal; offset)
    margin: float                 # distance of the closest point to the separator

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])


def linearly_separable(
    num_points: int,
    dim: int,
    *,
    margin: float = 0.5,
    spread: float = 3.0,
    label_noise: float = 0.0,
    rng=None,
) -> LabeledDataset:
    """Two classes separated by a random hyperplane with a guaranteed margin.

    Points are drawn isotropically, projected away from the separator until
    they clear the requested ``margin``, and labelled by the side they end up
    on.  With ``label_noise > 0`` a fraction of labels is flipped (the points
    themselves stay put), which is how the active-learning tests model
    annotation errors.

    Parameters
    ----------
    num_points, dim:
        Size and dimensionality of the point set.
    margin:
        Minimum distance of any point to the separating hyperplane.
    spread:
        Scale of the isotropic point cloud around the separator.
    label_noise:
        Fraction of labels flipped after generation, in ``[0, 1)``.
    rng:
        Seed or generator.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim", minimum=2)
    if margin < 0.0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
    generator = ensure_rng(rng)

    normal = generator.normal(size=dim)
    normal /= np.linalg.norm(normal)
    offset = float(generator.normal(scale=0.5))

    points = generator.normal(scale=spread, size=(num_points, dim))
    signed = points @ normal + offset
    sides = np.where(signed >= 0.0, 1.0, -1.0)
    # Push every point away from the plane until it clears the margin.
    deficit = np.maximum(margin - np.abs(signed), 0.0)
    points = points + np.outer(sides * deficit, normal)

    labels = sides.copy()
    if label_noise > 0.0:
        flip = generator.random(num_points) < label_noise
        labels[flip] = -labels[flip]

    separator = np.append(normal, offset)
    achieved_margin = float(np.min(np.abs(points @ normal + offset)))
    return LabeledDataset(
        points=points, labels=labels, separator=separator, margin=achieved_margin
    )


def two_clusters(
    num_points: int,
    dim: int,
    *,
    separation: float = 6.0,
    cluster_std: float = 1.0,
    balance: float = 0.5,
    rng=None,
) -> LabeledDataset:
    """Two Gaussian clusters along a random direction (for clustering tests).

    Parameters
    ----------
    separation:
        Distance between the two cluster means.
    cluster_std:
        Standard deviation of each isotropic cluster.
    balance:
        Fraction of points in the positive cluster, in ``(0, 1)``.
    """
    num_points = check_positive_int(num_points, name="num_points")
    dim = check_positive_int(dim, name="dim", minimum=2)
    if separation <= 0.0 or cluster_std <= 0.0:
        raise ValueError("separation and cluster_std must be positive")
    if not 0.0 < balance < 1.0:
        raise ValueError(f"balance must be in (0, 1), got {balance}")
    generator = ensure_rng(rng)

    direction = generator.normal(size=dim)
    direction /= np.linalg.norm(direction)
    num_positive = max(1, min(num_points - 1, int(round(balance * num_points))))
    num_negative = num_points - num_positive

    positive = generator.normal(scale=cluster_std, size=(num_positive, dim))
    positive += direction * (separation / 2.0)
    negative = generator.normal(scale=cluster_std, size=(num_negative, dim))
    negative -= direction * (separation / 2.0)

    points = np.vstack([positive, negative])
    labels = np.concatenate([np.ones(num_positive), -np.ones(num_negative)])
    order = generator.permutation(num_points)
    points, labels = points[order], labels[order]

    # The bisecting hyperplane between the two cluster means.
    separator = np.append(direction, 0.0)
    margin = float(np.min(np.abs(points @ direction)))
    return LabeledDataset(
        points=points, labels=labels, separator=separator, margin=margin
    )


def train_test_split(
    dataset: LabeledDataset,
    *,
    test_fraction: float = 0.25,
    rng=None,
) -> Tuple[LabeledDataset, LabeledDataset]:
    """Split a labeled dataset into train and test parts (shared separator)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    generator = ensure_rng(rng)
    n = dataset.num_points
    num_test = max(1, min(n - 1, int(round(test_fraction * n))))
    order = generator.permutation(n)
    test_rows, train_rows = order[:num_test], order[num_test:]

    def subset(rows: np.ndarray) -> LabeledDataset:
        points = dataset.points[rows]
        normal, offset = dataset.separator[:-1], dataset.separator[-1]
        margin = float(np.min(np.abs(points @ normal + offset)))
        return LabeledDataset(
            points=points,
            labels=dataset.labels[rows],
            separator=dataset.separator.copy(),
            margin=margin,
        )

    return subset(train_rows), subset(test_rows)

"""Reading and writing vector data sets in the formats the paper's data use.

The 16 real-world data sets of Table II are distributed in the TEXMEX
``.fvecs`` / ``.bvecs`` / ``.ivecs`` formats (Sift, Gist, Sift100M, ...) or
as dense text/NumPy matrices.  This module implements those container
formats from scratch so a user who *does* have the original files can run
every benchmark on the real data simply by pointing ``load_points`` at them
— the rest of the library never knows whether points came from a synthetic
surrogate or from disk.

Formats
-------
* ``.fvecs`` — each vector is stored as ``int32 d`` followed by ``d``
  little-endian ``float32`` values.
* ``.bvecs`` — ``int32 d`` followed by ``d`` ``uint8`` values.
* ``.ivecs`` — ``int32 d`` followed by ``d`` ``int32`` values (ground-truth
  neighbor lists).
* ``.npy`` / ``.npz`` — NumPy's native formats.
* ``.csv`` / ``.txt`` — one vector per line, comma or whitespace separated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.utils.validation import check_points_matrix

_VECS_DTYPES = {
    ".fvecs": np.float32,
    ".bvecs": np.uint8,
    ".ivecs": np.int32,
}


def _read_vecs(path: Path, dtype, *, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read a TEXMEX ``*vecs`` file into an ``(n, d)`` array."""
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=np.float64)
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid vector dimension {dim}")
    item_size = np.dtype(dtype).itemsize
    record_bytes = 4 + dim * item_size
    if raw.size % record_bytes != 0:
        raise ValueError(
            f"{path}: file size {raw.size} is not a multiple of the record size "
            f"{record_bytes} (d={dim})"
        )
    num_vectors = raw.size // record_bytes
    if max_vectors is not None:
        num_vectors = min(num_vectors, int(max_vectors))
        raw = raw[: num_vectors * record_bytes]
    records = raw.reshape(num_vectors, record_bytes)
    dims = records[:, :4].copy().view("<i4").ravel()
    if not np.all(dims == dim):
        raise ValueError(f"{path}: inconsistent vector dimensions")
    body = records[:, 4:].copy().view(np.dtype(dtype).newbyteorder("<"))
    return np.ascontiguousarray(body.astype(np.float64))


def _write_vecs(path: Path, points: np.ndarray, dtype) -> None:
    """Write an ``(n, d)`` array as a TEXMEX ``*vecs`` file."""
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {pts.shape}")
    n, dim = pts.shape
    header = np.full((n, 1), dim, dtype="<i4")
    body = np.ascontiguousarray(pts.astype(np.dtype(dtype).newbyteorder("<")))
    with path.open("wb") as handle:
        for row_header, row in zip(header, body):
            handle.write(row_header.tobytes())
            handle.write(row.tobytes())


def read_fvecs(path, *, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read a ``.fvecs`` file (float32 vectors) as a float64 matrix."""
    return _read_vecs(Path(path), np.float32, max_vectors=max_vectors)


def read_bvecs(path, *, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read a ``.bvecs`` file (uint8 vectors) as a float64 matrix."""
    return _read_vecs(Path(path), np.uint8, max_vectors=max_vectors)


def read_ivecs(path, *, max_vectors: Optional[int] = None) -> np.ndarray:
    """Read an ``.ivecs`` file (int32 vectors, e.g. ground-truth lists)."""
    data = _read_vecs(Path(path), np.int32, max_vectors=max_vectors)
    return data.astype(np.int64)


def write_fvecs(path, points: np.ndarray) -> Path:
    """Write points to a ``.fvecs`` file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_vecs(path, points, np.float32)
    return path


def write_ivecs(path, indices: np.ndarray) -> Path:
    """Write integer vectors (e.g. ground-truth lists) to an ``.ivecs`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_vecs(path, indices, np.int32)
    return path


def load_points(
    path,
    *,
    max_vectors: Optional[int] = None,
) -> np.ndarray:
    """Load a point matrix from any supported container format.

    The format is chosen from the file extension: ``.fvecs``, ``.bvecs``,
    ``.ivecs``, ``.npy``, ``.npz`` (first array), ``.csv``, ``.txt``.

    Parameters
    ----------
    path:
        Path to the data file.
    max_vectors:
        Optional cap on the number of vectors read (useful for the 100M-point
        files, which are read front-to-back).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such data file: {path}")
    suffix = path.suffix.lower()
    if suffix in _VECS_DTYPES:
        points = _read_vecs(path, _VECS_DTYPES[suffix], max_vectors=max_vectors)
    elif suffix == ".npy":
        points = np.load(path)
    elif suffix == ".npz":
        with np.load(path) as archive:
            first_key = sorted(archive.files)[0]
            points = archive[first_key]
    elif suffix in (".csv", ".txt"):
        delimiter = "," if suffix == ".csv" else None
        points = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    else:
        raise ValueError(
            f"unsupported data file extension {suffix!r}; expected one of "
            ".fvecs, .bvecs, .ivecs, .npy, .npz, .csv, .txt"
        )
    points = np.asarray(points, dtype=np.float64)
    if max_vectors is not None:
        points = points[: int(max_vectors)]
    return check_points_matrix(points, name=f"points from {path.name}")


def save_points(path, points: np.ndarray) -> Path:
    """Save a point matrix in the format implied by the file extension."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    pts = check_points_matrix(points, name="points")
    suffix = path.suffix.lower()
    if suffix == ".fvecs":
        return write_fvecs(path, pts)
    if suffix == ".npy":
        np.save(path, pts)
        return path
    if suffix == ".npz":
        np.savez_compressed(path, points=pts)
        return path
    if suffix == ".csv":
        np.savetxt(path, pts, delimiter=",")
        return path
    if suffix == ".txt":
        np.savetxt(path, pts)
        return path
    raise ValueError(
        f"unsupported output extension {suffix!r}; expected one of "
        ".fvecs, .npy, .npz, .csv, .txt"
    )

"""Synthetic dataset surrogates, hyperplane query generators, and file I/O."""

from repro.datasets.io import (
    load_points,
    read_bvecs,
    read_fvecs,
    read_ivecs,
    save_points,
    write_fvecs,
    write_ivecs,
)
from repro.datasets.labels import (
    LabeledDataset,
    linearly_separable,
    train_test_split,
    two_clusters,
)
from repro.datasets.queries import (
    bisector_hyperplane_queries,
    random_hyperplane_queries,
    svm_like_hyperplane_queries,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    available_datasets,
    load_dataset,
)
from repro.datasets.synthetic import (
    clustered_gaussian,
    correlated_gaussian,
    heavy_tailed,
    low_rank_embedding,
    uniform_hypercube,
)
from repro.datasets.transforms import (
    TransformPipeline,
    center,
    pca_project,
    standardize,
    unit_normalize,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "random_hyperplane_queries",
    "bisector_hyperplane_queries",
    "svm_like_hyperplane_queries",
    "clustered_gaussian",
    "correlated_gaussian",
    "low_rank_embedding",
    "heavy_tailed",
    "uniform_hypercube",
    "load_points",
    "save_points",
    "read_fvecs",
    "read_bvecs",
    "read_ivecs",
    "write_fvecs",
    "write_ivecs",
    "TransformPipeline",
    "unit_normalize",
    "center",
    "standardize",
    "pca_project",
    "LabeledDataset",
    "linearly_separable",
    "two_clusters",
    "train_test_split",
]

"""Command-line interface for the library.

The CLI exposes the three things a user most often wants to do without
writing code:

* ``python -m repro datasets`` — list the registered data-set surrogates.
* ``python -m repro search``  — build an index over a data set (registry
  surrogate or a file on disk) through the declarative ``repro.api``
  registry and answer random hyperplane queries through the engine's
  batched path (``--n-jobs`` / ``--executor`` control the worker pool, and
  every single-index registry family is available via ``--method`` — the
  composites and the MIPS adapter need programmatic configuration and stay
  library-only), printing recall and timing against the exact linear scan.
  ``--fast`` opts the tree indexes into the approximate fast mode
  (``exact=False``: float32 storage plus cross-query GEMM kernels).
* ``python -m repro cluster`` — serve a cluster directory (or split a
  saved partitioned payload into one with ``--out``) as a multi-process
  scatter-gather deployment: one shard server per manifest entry plus
  the router front end, whose gathered answers are bit-identical to the
  single-process partitioned index.
* ``python -m repro run <experiment>`` — regenerate one of the paper's
  tables or figures (``table2``, ``table3``, ``fig5`` ... ``fig11``,
  ``partitioned``, ``batch``) at a configurable scale, printing the same
  rows the benchmark suite produces and optionally writing JSON/CSV.
  ``run batch`` sweeps exact and budgeted configurations and reports, per
  row, the execution path actually dispatched (``kernel`` vs
  ``per-query``) together with the reason a configuration fell back —
  so a silently-vetoed option can't masquerade as a kernel run.

Every command is deterministic for a fixed ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.api import IndexSpec, SearchOptions, build_index, describe_index
from repro.api.specs import normalize_kind
from repro.datasets import load_dataset, random_hyperplane_queries
from repro.datasets.io import load_points
from repro.datasets.registry import DATASETS, available_datasets
from repro.eval.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    run_experiment,
)
from repro.eval.plots import records_to_csv
from repro.eval.reporting import render_table, save_json
from repro.eval.runner import evaluate_index

#: CLI method names (historic spellings kept) -> registry kinds; every
#: index is built declaratively through ``repro.api.build_index``.
LEGACY_METHOD_KINDS = {"linear": "linear_scan"}

METHOD_CHOICES = (
    "bc-tree", "ball-tree", "kd-tree", "rp-tree", "linear",
    "nh", "fh", "bh", "mh", "ah", "eh",
)


def method_spec(args) -> IndexSpec:
    """The declarative :class:`IndexSpec` for the CLI's ``--method`` flags."""
    kind = normalize_kind(LEGACY_METHOD_KINDS.get(args.method, args.method))
    if kind in ("ball_tree", "bc_tree", "rp_tree"):
        params = {"leaf_size": args.leaf_size, "random_state": args.seed}
    elif kind == "kd_tree":
        params = {"leaf_size": args.leaf_size}
    elif kind in ("nh", "fh", "bh", "mh", "ah", "eh"):
        params = {"num_tables": args.num_tables, "random_state": args.seed}
    else:  # linear_scan
        params = {}
    storage = getattr(args, "storage", None)
    if storage is not None and kind in (
        "ball_tree", "bc_tree", "rp_tree", "kd_tree",
    ):
        params["storage"] = storage
    budget = getattr(args, "memory_budget_mb", None)
    if budget is not None and kind in (
        "ball_tree", "bc_tree", "rp_tree", "kd_tree",
    ):
        return IndexSpec(kind, params, memory_budget_mb=budget)
    return IndexSpec(kind, params)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ball-Tree / BC-Tree point-to-hyperplane nearest neighbor search "
            "(ICDE 2023 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    datasets_parser = subparsers.add_parser(
        "datasets", help="list the registered data-set surrogates"
    )
    datasets_parser.add_argument(
        "--include-large-scale",
        action="store_true",
        help="include the Deep100M / Sift100M surrogates in the listing",
    )

    search_parser = subparsers.add_parser(
        "search", help="build an index and answer random hyperplane queries"
    )
    search_parser.add_argument(
        "--dataset",
        default="Cifar-10",
        help="registry data-set name (default: Cifar-10)",
    )
    search_parser.add_argument(
        "--data-file",
        default=None,
        help="load points from a file (.fvecs/.bvecs/.npy/.csv) instead of the registry",
    )
    search_parser.add_argument(
        "--method",
        default="bc-tree",
        choices=sorted(METHOD_CHOICES),
        help="index to build (default: bc-tree)",
    )
    search_parser.add_argument("--num-points", type=int, default=4000)
    search_parser.add_argument("--num-queries", type=int, default=10)
    search_parser.add_argument("--k", type=int, default=10)
    search_parser.add_argument("--leaf-size", type=int, default=100)
    search_parser.add_argument("--num-tables", type=int, default=32)
    search_parser.add_argument(
        "--candidate-fraction",
        type=float,
        default=None,
        help="approximate search budget for the tree indexes",
    )
    search_parser.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        help="absolute candidate budget (alternative to --candidate-fraction)",
    )
    search_parser.add_argument(
        "--fast",
        action="store_true",
        help=(
            "run the approximate fast mode (exact=False): float32 storage "
            "with cross-query GEMM kernels; tree indexes only"
        ),
    )
    search_parser.add_argument(
        "--storage",
        default=None,
        choices=("ram", "float32", "mmap", "mmap32"),
        help=(
            "point-array storage backend for the tree indexes "
            "(default: resident float64; 'mmap' serves the leaf-ordered "
            "copy from memory-mapped .npy files)"
        ),
    )
    search_parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        help=(
            "build the index with the memory-bounded chunked path "
            "(out-of-core fit_chunked) under this row-memory budget in MiB; "
            "tree indexes only"
        ),
    )
    search_parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="worker-pool size for batched query execution (default: inline)",
    )
    search_parser.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process"),
        help="worker-pool flavor for batched execution (default: thread)",
    )
    search_parser.add_argument("--seed", type=int, default=0)

    info_parser = subparsers.add_parser(
        "info",
        help="describe a saved index from its header (no arrays loaded)",
    )
    info_parser.add_argument("path", help="path to a saved index payload")

    run_parser = subparsers.add_parser(
        "run", help="regenerate one of the paper's tables or figures"
    )
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="experiment id (table2, table3, fig5 ... fig11, partitioned, batch)",
    )
    run_parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated data-set names (default: a representative subset)",
    )
    run_parser.add_argument("--num-points", type=int, default=4000)
    run_parser.add_argument("--num-queries", type=int, default=20)
    run_parser.add_argument("--k", type=int, default=10)
    run_parser.add_argument("--leaf-size", type=int, default=100)
    run_parser.add_argument("--num-tables", type=int, default=32)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--json", default=None, help="write records to a JSON file")
    run_parser.add_argument("--csv", default=None, help="write records to a CSV file")

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "serve a saved index over HTTP with query coalescing "
            "(POST /search, GET /healthz, GET /stats)"
        ),
    )
    serve_parser.add_argument("path", help="path to a saved index payload")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 asks the OS for an ephemeral port (default: 8080)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most queries per coalesced flush; 1 disables coalescing (default: 64)",
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="most milliseconds a query waits for flush companions (default: 2)",
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        help="most queries queued before arrivals get HTTP 429 (default: 1024)",
    )
    serve_parser.add_argument(
        "--timeout-ms",
        type=float,
        default=10_000.0,
        help="per-request deadline before HTTP 504 (default: 10000)",
    )
    serve_parser.add_argument(
        "--k", type=int, default=10,
        help="default top-k when a request names none (default: 10)",
    )
    serve_parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="worker-pool size of the serving session (default: inline)",
    )
    serve_parser.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process"),
        help="worker-pool flavor of the serving session (default: thread)",
    )

    cluster_parser = subparsers.add_parser(
        "cluster",
        help=(
            "serve a cluster directory (or split a partitioned payload "
            "into one) behind a scatter-gather router"
        ),
    )
    cluster_parser.add_argument(
        "path",
        help=(
            "a cluster directory (holding manifest.json) to serve, or a "
            "saved PartitionedP2HIndex payload to split first"
        ),
    )
    cluster_parser.add_argument(
        "--out",
        default=None,
        help=(
            "destination directory when splitting a payload "
            "(default: <payload>.cluster)"
        ),
    )
    cluster_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "expected shard count; refused if it disagrees with the "
            "payload/manifest (shard count is data-defined, not a resize)"
        ),
    )
    cluster_parser.add_argument(
        "--ports",
        default=None,
        help="comma-separated shard ports, one per shard (default: ephemeral)",
    )
    cluster_parser.add_argument(
        "--router-port",
        type=int,
        default=None,
        help="router bind port; 0 asks the OS for an ephemeral port",
    )
    cluster_parser.add_argument(
        "--host",
        default=None,
        help="interface the shard and router sockets bind (default: spec's)",
    )
    cluster_parser.add_argument(
        "--mode",
        default="process",
        choices=("process", "thread"),
        help=(
            "shard isolation: one spawned process per shard, or threads "
            "in this process for cheap smoke runs (default: process)"
        ),
    )
    cluster_parser.add_argument(
        "--split-only",
        action="store_true",
        help="split the payload into a cluster directory and exit",
    )

    # Listed here only so `repro --help` mentions it; the real option
    # surface lives in repro.analysis.cli and main() dispatches to it
    # before this parser ever sees the command line.
    subparsers.add_parser(
        "check",
        help="run the project's static-analysis rules (repro check --help)",
        add_help=False,
    )

    return parser


# ----------------------------------------------------------------- commands


def _cmd_datasets(args) -> int:
    names = available_datasets(include_large_scale=args.include_large_scale)
    records = []
    for name in names:
        spec = DATASETS[name]
        records.append(
            {
                "dataset": spec.name,
                "paper_n": spec.paper_points,
                "d": spec.paper_dim,
                "data_type": spec.data_type,
                "surrogate_n": spec.surrogate_points,
                "generator": spec.generator,
            }
        )
    print(
        render_table(
            records,
            ["dataset", "paper_n", "d", "data_type", "surrogate_n", "generator"],
            title="Registered data sets (Table II)",
        )
    )
    return 0


def _cmd_search(args) -> int:
    if args.data_file:
        points = load_points(args.data_file, max_vectors=args.num_points)
        dataset_name = args.data_file
    else:
        dataset = load_dataset(args.dataset, num_points=args.num_points)
        points = dataset.points
        dataset_name = dataset.name
    queries = random_hyperplane_queries(points, args.num_queries, rng=args.seed + 2023)

    spec = method_spec(args)
    index = build_index(spec)
    budget_kinds = ("ball_tree", "bc_tree", "kd_tree", "rp_tree")
    budget_given = (
        args.candidate_fraction is not None or args.max_candidates is not None
    )
    if budget_given and spec.kind not in budget_kinds:
        # Refuse rather than silently running exact search: a dropped
        # budget flag would mislabel every number the command prints.
        print(
            f"invalid search options: --candidate-fraction/--max-candidates "
            f"apply to the tree indexes only, not {args.method!r}",
            file=sys.stderr,
        )
        return 2
    if args.memory_budget_mb is not None and spec.kind not in budget_kinds:
        # Same refusal contract as --storage: only the tree families have
        # a chunked build, and silently dropping the budget would mislabel
        # the build path of everything the command prints.
        print(
            f"invalid search options: --memory-budget-mb applies to the "
            f"tree indexes only, not {args.method!r}",
            file=sys.stderr,
        )
        return 2
    if args.storage is not None and spec.kind not in budget_kinds:
        # Same refusal contract as --fast: only the tree families take the
        # storage knob through the CLI, and silently dropping it would
        # mislabel the memory behavior of everything the command prints.
        print(
            f"invalid search options: --storage applies to the tree "
            f"indexes only, not {args.method!r}",
            file=sys.stderr,
        )
        return 2
    if args.fast and spec.kind not in budget_kinds:
        # Same refusal contract as the budget flags: only the tree
        # families have a fast kernel, and a silently-dropped --fast would
        # mislabel every timing the command prints as a fast-mode number.
        print(
            f"invalid search options: --fast applies to the tree indexes "
            f"only, not {args.method!r}",
            file=sys.stderr,
        )
        return 2
    try:
        options = SearchOptions(
            k=args.k,
            candidate_fraction=args.candidate_fraction,
            max_candidates=args.max_candidates,
            n_jobs=args.n_jobs,
            executor=args.executor,
            exact=not args.fast,
        )
    except (TypeError, ValueError) as exc:
        print(f"invalid search options: {exc}", file=sys.stderr)
        return 2

    evaluation = evaluate_index(
        index,
        points,
        queries,
        args.k,
        method_name=args.method,
        dataset_name=dataset_name,
        options=options,
    )
    record = evaluation.as_record()
    columns = [
        "method",
        "dataset",
        "k",
        "recall",
        "avg_query_ms",
        "indexing_seconds",
        "index_size_mb",
    ]
    print(render_table([record], columns, title="Search evaluation"))
    return 0


def _cmd_info(args) -> int:
    try:
        description = describe_index(args.path)
    except FileNotFoundError:
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot describe index: {exc}", file=sys.stderr)
        return 2
    record = description.to_dict()
    spec = record.pop("spec", None)
    storage = record.pop("storage", None) or {}
    record["storage_backend"] = storage.get("backend")
    record["params"] = (
        None if spec is None else ", ".join(
            f"{key}={value}" for key, value in sorted(spec["params"].items())
        ) or "-"
    )
    columns = [
        "path",
        "format_version",
        "kind",
        "params",
        "num_shards",
        "storage_backend",
        "storage_dtype",
        "payload_bytes",
        "sidecar_bytes",
    ]
    print(render_table([record], columns, title="Saved index"))
    return 0


def _cmd_run(args) -> int:
    datasets: Optional[Sequence[str]] = None
    if args.datasets:
        datasets = tuple(
            name.strip() for name in args.datasets.split(",") if name.strip()
        )
    config = ExperimentConfig(
        datasets=datasets or ExperimentConfig().datasets,
        num_points=args.num_points,
        num_queries=args.num_queries,
        k=args.k,
        leaf_size=args.leaf_size,
        num_tables=args.num_tables,
        seed=args.seed,
    )
    output = run_experiment(args.experiment, config)
    print(render_table(output.records, output.columns, title=output.title))
    if args.json:
        save_json(output.records, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        records_to_csv(output.records, output.columns, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_serve(args) -> int:
    # Imported here (not module top) so `repro search`/`repro run` never
    # pay for the serving stack.
    from repro.api import Searcher, load_index
    from repro.serve import ServeConfig, run_server

    try:
        index = load_index(args.path)
    except FileNotFoundError:
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot load index: {exc}", file=sys.stderr)
        return 2
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue_depth=args.queue_depth,
            request_timeout_ms=args.timeout_ms,
        )
        options = SearchOptions(k=args.k, n_jobs=args.n_jobs, executor=args.executor)
    except (TypeError, ValueError) as exc:
        print(f"invalid serve options: {exc}", file=sys.stderr)
        return 2

    def announce(server) -> None:
        mode = (
            f"coalescing (max_batch={config.max_batch}, "
            f"max_wait_ms={config.max_wait_ms:g})"
            if config.coalescing else "per-query (coalescing off)"
        )
        print(
            f"serving {type(index).__name__} from {args.path} on "
            f"http://{config.host}:{server.port} [{mode}] — Ctrl-C to stop",
            flush=True,
        )

    with Searcher(index, options) as searcher:
        run_server(searcher, config, on_start=announce)
    return 0


def _cmd_cluster(args) -> int:
    # Imported here (not module top) so the other commands never pay for
    # the cluster stack.
    import dataclasses
    import threading
    from pathlib import Path

    from repro.cluster import (
        ClusterManager,
        read_manifest,
        split_partitioned_payload,
        write_manifest,
    )
    from repro.cluster.manifest import MANIFEST_NAME

    path = Path(args.path)
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.router_port is not None:
        overrides["router_port"] = args.router_port
    if args.ports is not None:
        try:
            overrides["shard_ports"] = tuple(
                int(part) for part in args.ports.split(",") if part.strip()
            )
        except ValueError:
            print(f"invalid --ports value: {args.ports!r}", file=sys.stderr)
            return 2

    split = not (path.is_dir() or path.name == MANIFEST_NAME)
    try:
        if split:
            out_dir = Path(args.out) if args.out else Path(f"{path}.cluster")
            manifest = split_partitioned_payload(path, out_dir)
            print(
                f"split {path} into {manifest.spec.num_shards} shard "
                f"payload(s) under {manifest.directory}"
            )
        else:
            manifest = read_manifest(path)
    except FileNotFoundError as exc:
        message = str(exc) if exc.filename is None else f"no such file: {path}"
        print(message, file=sys.stderr)
        return 2
    except (TypeError, ValueError) as exc:
        print(f"cannot open cluster: {exc}", file=sys.stderr)
        return 2

    if args.shards is not None and args.shards != manifest.spec.num_shards:
        print(
            f"--shards {args.shards} disagrees with {manifest.directory} "
            f"(num_shards={manifest.spec.num_shards}); the shard count is "
            "fixed by the data — rebuild the cluster directory to change it",
            file=sys.stderr,
        )
        return 2

    if overrides:
        try:
            spec = dataclasses.replace(manifest.spec, **overrides)
        except (TypeError, ValueError) as exc:
            print(f"invalid cluster options: {exc}", file=sys.stderr)
            return 2
        manifest = dataclasses.replace(manifest, spec=spec)
        if split:
            # A directory this run created records the requested topology,
            # so a later `repro cluster <dir>` reuses it flag-free.  An
            # existing directory is never rewritten: the overrides apply
            # to this serve only.
            write_manifest(
                manifest.directory,
                spec,
                [entry.load_point_ids() for entry in manifest.shards],
            )

    if args.split_only:
        print(f"cluster directory ready: {manifest.directory}")
        return 0

    spec = manifest.spec
    try:
        with ClusterManager(manifest, mode=args.mode) as cluster:
            print(
                f"cluster of {spec.num_shards} shard(s) "
                f"[{spec.index.kind}, mode={args.mode}] from "
                f"{manifest.directory} routing on "
                f"http://{spec.host}:{cluster.router_port} — Ctrl-C to stop",
                flush=True,
            )
            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                print("shutting down", flush=True)
    except RuntimeError as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["check"]:
        # Static analysis owns its own option surface; hand the rest of
        # the command line straight to repro.analysis.
        from repro.analysis.cli import main as check_main

        return check_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Lightweight wall-clock timing helpers used by the evaluation harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


class Timer:
    """A context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


@dataclass
class StageTimer:
    """Accumulate wall-clock time per named stage.

    Used for the Figure 10 style time-profile breakdown (verification,
    lower-bound computation, table lookup, other).
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` to ``stage``'s running total."""
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds

    def total(self) -> float:
        """Total time across all stages."""
        return float(sum(self.totals.values()))

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of the total (empty dict if no time recorded)."""
        total = self.total()
        if total <= 0.0:
            return {}
        return {stage: value / total for stage, value in self.totals.items()}

    def merge(self, other: "StageTimer") -> None:
        """Accumulate another profile into this one."""
        for stage, value in other.totals.items():
            self.add(stage, value)

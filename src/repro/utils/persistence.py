"""Versioned on-disk payload format shared by every index's ``save``/``load``.

Every persisted index — the static :class:`~repro.core.index_base.P2HIndex`
subclasses as well as the :class:`~repro.core.dynamic.DynamicP2HIndex` and
:class:`~repro.core.partitioned.PartitionedP2HIndex` composites — is written
as **two pickle frames** in one file:

1. a small *header* dictionary::

       {"format": "repro-index", "format_version": 1,
        "spec": {"kind": "bc_tree", "params": {...}} | None,
        "storage_dtype": "float64" | None,
        "storage": {"backend": "ram" | "mmap", "dtype": ...} | None}

2. the index object itself.

Indexes whose point arrays live in an mmap store additionally write the
``.npy`` files into a ``<path>.arrays/`` *sidecar* directory next to the
payload; the pickle frame then carries only file names, and ``load_index``
re-opens the arrays memory-mapped instead of unpickling them into RAM.
The payload file plus its sidecar directory are one artifact — move or
copy them together.

The envelope buys three things:

* ``repro.api.load_index(path)`` can reconstruct **any** index family
  without knowing the class up front, and can report the declarative
  :class:`~repro.api.IndexSpec` the index was built from (stamped by
  :func:`repro.api.build_index` as a plain ``spec`` dictionary, so loading
  never imports :mod:`repro.api`);
* files written by an incompatible library version fail with a clear
  :class:`ValueError` instead of an attribute error deep inside a search;
* the spec of a saved index (:func:`read_index_spec`) is readable without
  unpickling the index frame — inspecting how a multi-GB index was
  configured costs a few hundred bytes, not the index.

This module is deliberately a leaf (stdlib-only apart from the
numpy-backed :mod:`repro.storage` sidecar hooks, imported lazily) so both
the core layer and the public API layer can share the format without an
import cycle.

The header is additive-only: every key it may carry is registered, with
the format version that introduced it, in ``HEADER_KEY_VERSIONS`` in
:mod:`repro.api.persistence`, and ``repro check`` rule REP501 statically
cross-checks write sites against that table.
"""

from __future__ import annotations

import pickle
import shutil
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 1


def dump_index_payload(
    path,
    index: Any,
    *,
    spec: Optional[Dict] = None,
    storage_dtype: Optional[str] = None,
    storage: Optional[Dict] = None,
    stores: Sequence[Any] = (),
    shards: Optional[Dict] = None,
) -> None:
    """Write ``index`` (plus its optional spec dict) as a versioned payload.

    ``storage_dtype`` records the dtype the index's point arrays are
    stored in; ``storage`` records the full ``{"backend", "dtype"}``
    header of the index's :class:`~repro.storage.StorageSpec` (the fast
    mode's reduced-precision arrays are derived runtime caches and are
    never part of the contract).  Both keys are additive — payloads
    written without them (older files) read back with ``None`` — so the
    format version stays at 1.

    ``stores`` lists every :class:`~repro.storage.base.ArrayStore` backing
    the index (composites pass one per sub-index).  Mmap stores are
    persisted into the ``<path>.arrays/`` sidecar *before* the index is
    pickled, so the pickle frame records the sidecar location.

    ``shards`` records the shard layout of a partitioned composite as
    ``{"count": int, "sizes": [int, ...]}`` — additive like the storage
    keys (absent for single-index payloads and older files), so
    ``describe_index`` and the cluster payload splitter learn the
    partition geometry from the header frame alone.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mapped = [
        store for store in stores if getattr(store, "backend", None) == "mmap"
    ]
    sidecar = _sidecar_for(path)
    if sidecar.exists():
        # Stale sidecar from a previous save at this path: the new payload
        # fully replaces it (matching plain-file overwrite semantics).
        shutil.rmtree(sidecar)
    for number, store in enumerate(mapped):
        store.persist(sidecar, f"store{number}")
    header = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "spec": spec,
        "storage_dtype": storage_dtype,
        "storage": storage,
    }
    if shards is not None:
        # Only partitioned payloads carry the key, keeping every other
        # family's header bytes unchanged.
        header["shards"] = shards
    with path.open("wb") as handle:
        pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)


def _sidecar_for(path: Path) -> Path:
    """``<path>.arrays`` — the mmap sidecar directory for a payload file.

    Kept in sync with :func:`repro.storage.mmap.sidecar_path` (duplicated
    so reading a ram-backed payload never imports numpy-dependent code).
    """
    return path.with_name(path.name + ".arrays")


def _check_header(path, header: Dict[str, Any]) -> None:
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} was saved with index format version {version}, "
            f"but this build reads version {FORMAT_VERSION}; "
            "re-save the index with the matching library version"
        )


def load_index_payload(path) -> Dict[str, Any]:
    """Read a payload written by :func:`dump_index_payload`.

    Returns ``{"index": obj, "spec": dict | None,
    "storage_dtype": str | None, "storage": dict | None}``.  Legacy files
    holding a raw index pickle (written before the envelope existed) are
    accepted and wrapped with ``spec=None``; payloads from before the
    ``storage_dtype`` / ``storage`` header keys read back with those
    values as ``None``.

    Payloads with an ``.arrays`` sidecar (mmap-backed indexes) unpickle
    with the sidecar bound as the store directory, so the arrays are
    served memory-mapped from the files next to the payload actually
    being read — the pair can be moved or renamed wholesale.

    Raises
    ------
    ValueError
        If the file is a payload written with a different
        ``format_version`` than this build understands, or the payload is
        truncated (header frame without an index frame).
    """
    path = Path(path)
    with path.open("rb") as handle:
        obj = pickle.load(handle)
        if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
            _check_header(path, obj)
            try:
                index = _load_index_frame(path, handle)
            except EOFError:
                raise ValueError(
                    f"{path} is a {FORMAT_NAME} payload with no index"
                ) from None
            return {
                "index": index,
                "spec": obj.get("spec"),
                "storage_dtype": obj.get("storage_dtype"),
                "storage": obj.get("storage"),
            }
    # Legacy raw pickle (pre-envelope): the object *is* the index.
    return {"index": obj, "spec": None, "storage_dtype": None, "storage": None}


def _load_index_frame(path: Path, handle):
    """Unpickle the index frame, binding any mmap stores to the sidecar."""
    sidecar = _sidecar_for(path)
    if not sidecar.is_dir():
        return pickle.load(handle)
    from repro.storage.mmap import SIDECAR_DIRECTORY

    token = SIDECAR_DIRECTORY.set(str(sidecar))
    try:
        return pickle.load(handle)
    finally:
        SIDECAR_DIRECTORY.reset(token)


def read_index_spec(path) -> Optional[Dict[str, Any]]:
    """The spec dict from a payload's header, without unpickling the index.

    Returns None for payloads saved without a spec and for legacy raw
    pickles (whose single frame *is* the index, so the header-only saving
    does not apply to them — they are fully unpickled and discarded);
    raises the same version-mismatch :class:`ValueError` as
    :func:`load_index_payload`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return obj.get("spec")
    return None


def read_storage_dtype(path) -> Optional[str]:
    """The ``storage_dtype`` header key, without unpickling the index.

    Returns None for payloads written before the key existed and for
    legacy raw pickles; raises the same version-mismatch
    :class:`ValueError` as :func:`load_index_payload`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return obj.get("storage_dtype")
    return None


def read_storage_header(path) -> Optional[Dict[str, Any]]:
    """The ``storage`` header key, without unpickling the index.

    ``{"backend": ..., "dtype": ...}`` for payloads written by the
    storage-layer library; None for older payloads and legacy raw
    pickles; raises the same version-mismatch :class:`ValueError` as
    :func:`load_index_payload`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return obj.get("storage")
    return None


def read_index_header(path) -> Optional[Dict[str, Any]]:
    """The full header dict of a payload, without unpickling the index.

    None for legacy raw pickles (which have no header frame); raises the
    version-mismatch :class:`ValueError` for incompatible payloads.
    Backs :func:`repro.api.describe_index`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return dict(obj)
    return None


def load_typed_index(path, cls):
    """Load a payload and check the index is a ``cls`` instance.

    The shared body of every family's ``load`` classmethod; raises
    :class:`TypeError` naming both the expected and the stored class.
    """
    obj = load_index_payload(path)["index"]
    if not isinstance(obj, cls):
        raise TypeError(
            f"{path} does not contain a {cls.__name__} "
            f"(got {type(obj).__name__})"
        )
    return obj

"""Versioned on-disk payload format shared by every index's ``save``/``load``.

Every persisted index — the static :class:`~repro.core.index_base.P2HIndex`
subclasses as well as the :class:`~repro.core.dynamic.DynamicP2HIndex` and
:class:`~repro.core.partitioned.PartitionedP2HIndex` composites — is written
as **two pickle frames** in one file:

1. a small *header* dictionary::

       {"format": "repro-index", "format_version": 1,
        "spec": {"kind": "bc_tree", "params": {...}} | None,
        "storage_dtype": "float64" | None}

2. the index object itself.

The envelope buys three things:

* ``repro.api.load_index(path)`` can reconstruct **any** index family
  without knowing the class up front, and can report the declarative
  :class:`~repro.api.IndexSpec` the index was built from (stamped by
  :func:`repro.api.build_index` as a plain ``spec`` dictionary, so loading
  never imports :mod:`repro.api`);
* files written by an incompatible library version fail with a clear
  :class:`ValueError` instead of an attribute error deep inside a search;
* the spec of a saved index (:func:`read_index_spec`) is readable without
  unpickling the index frame — inspecting how a multi-GB index was
  configured costs a few hundred bytes, not the index.

This module is deliberately a leaf (stdlib-only) so both the core layer and
the public API layer can share the format without an import cycle.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, Optional

FORMAT_NAME = "repro-index"
FORMAT_VERSION = 1


def dump_index_payload(
    path,
    index: Any,
    *,
    spec: Optional[Dict] = None,
    storage_dtype: Optional[str] = None,
) -> None:
    """Write ``index`` (plus its optional spec dict) as a versioned payload.

    ``storage_dtype`` records the dtype the index's point/geometry arrays
    are stored in (``"float64"`` for every current index; the fast mode's
    reduced-precision arrays are derived runtime caches and are never
    persisted).  The key is additive — payloads written without it (older
    files) read back with ``storage_dtype=None`` — so the format version
    stays at 1.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "spec": spec,
        "storage_dtype": storage_dtype,
    }
    with path.open("wb") as handle:
        pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)


def _check_header(path, header: Dict[str, Any]) -> None:
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} was saved with index format version {version}, "
            f"but this build reads version {FORMAT_VERSION}; "
            "re-save the index with the matching library version"
        )


def load_index_payload(path) -> Dict[str, Any]:
    """Read a payload written by :func:`dump_index_payload`.

    Returns ``{"index": obj, "spec": dict | None,
    "storage_dtype": str | None}``.  Legacy files holding a raw index
    pickle (written before the envelope existed) are accepted and wrapped
    with ``spec=None``; payloads from before the ``storage_dtype`` header
    key read back with ``storage_dtype=None``.

    Raises
    ------
    ValueError
        If the file is a payload written with a different
        ``format_version`` than this build understands, or the payload is
        truncated (header frame without an index frame).
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
        if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
            _check_header(path, obj)
            try:
                index = pickle.load(handle)
            except EOFError:
                raise ValueError(
                    f"{path} is a {FORMAT_NAME} payload with no index"
                ) from None
            return {
                "index": index,
                "spec": obj.get("spec"),
                "storage_dtype": obj.get("storage_dtype"),
            }
    # Legacy raw pickle (pre-envelope): the object *is* the index.
    return {"index": obj, "spec": None, "storage_dtype": None}


def read_index_spec(path) -> Optional[Dict[str, Any]]:
    """The spec dict from a payload's header, without unpickling the index.

    Returns None for payloads saved without a spec and for legacy raw
    pickles (whose single frame *is* the index, so the header-only saving
    does not apply to them — they are fully unpickled and discarded);
    raises the same version-mismatch :class:`ValueError` as
    :func:`load_index_payload`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return obj.get("spec")
    return None


def read_storage_dtype(path) -> Optional[str]:
    """The ``storage_dtype`` header key, without unpickling the index.

    Returns None for payloads written before the key existed and for
    legacy raw pickles; raises the same version-mismatch
    :class:`ValueError` as :func:`load_index_payload`.
    """
    with Path(path).open("rb") as handle:
        obj = pickle.load(handle)
    if isinstance(obj, dict) and obj.get("format") == FORMAT_NAME:
        _check_header(path, obj)
        return obj.get("storage_dtype")
    return None


def load_typed_index(path, cls):
    """Load a payload and check the index is a ``cls`` instance.

    The shared body of every family's ``load`` classmethod; raises
    :class:`TypeError` naming both the expected and the stored class.
    """
    obj = load_index_payload(path)["index"]
    if not isinstance(obj, cls):
        raise TypeError(
            f"{path} does not contain a {cls.__name__} "
            f"(got {type(obj).__name__})"
        )
    return obj

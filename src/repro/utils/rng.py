"""Random number generator helpers.

Every stochastic component in the library (tree splits, hash functions,
synthetic data generators) accepts either ``None``, an integer seed, or an
existing :class:`numpy.random.Generator`.  This module centralizes the
conversion so behaviour is reproducible and consistent across modules.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` for a seeded
        generator, or an existing generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.

    Raises
    ------
    TypeError
        If ``seed`` is not ``None``, an integer, or a generator.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when a component needs to hand out generators to sub-components
    (e.g. one per hash table) without correlating their streams.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))

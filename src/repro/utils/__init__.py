"""Shared utilities: validation, RNG handling, timing, persistence."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_points_matrix,
    check_query_vector,
    check_positive_int,
    check_fraction,
)

__all__ = [
    "ensure_rng",
    "Timer",
    "check_points_matrix",
    "check_query_vector",
    "check_positive_int",
    "check_fraction",
]

"""Input validation helpers shared by all indexes and generators."""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_points_matrix(
    points: np.ndarray,
    *,
    name: str = "points",
    min_rows: int = 1,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Validate and normalize a 2-D point matrix.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    name:
        Name used in error messages.
    min_rows:
        Minimum number of rows required.
    dtype:
        Target floating dtype; the array is converted (and copied if needed).

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float`` array of shape ``(n, d)``.

    Raises
    ------
    ValueError
        If the array is not 2-D, is empty, or contains non-finite values.
    """
    arr = np.asarray(points, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n, d), got shape {arr.shape}")
    if arr.shape[0] < min_rows:
        raise ValueError(
            f"{name} must contain at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if arr.shape[1] < 1:
        raise ValueError(f"{name} must have at least one column")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_query_vector(
    query: np.ndarray,
    *,
    expected_dim: Optional[int] = None,
    name: str = "query",
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Validate a single 1-D query vector.

    Parameters
    ----------
    query:
        Array-like of shape ``(d,)``.
    expected_dim:
        If given, the required length of the vector.
    name:
        Name used in error messages.
    dtype:
        Target floating dtype.

    Returns
    -------
    numpy.ndarray
        A contiguous 1-D float array.

    Raises
    ------
    ValueError
        If the vector has the wrong shape, wrong dimension, or non-finite
        entries.
    """
    arr = np.asarray(query, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if expected_dim is not None and arr.shape[0] != expected_dim:
        raise ValueError(
            f"{name} must have dimension {expected_dim}, got {arr.shape[0]}"
        )
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_query_matrix(
    queries: np.ndarray,
    *,
    expected_dim: Optional[int] = None,
    name: str = "queries",
    dtype: np.dtype = np.float64,
    check_finite: bool = True,
) -> np.ndarray:
    """Validate a query block, promoting a single vector to one row.

    The one promotion/shape/finiteness check shared by the engine's batch
    dispatch and the indexes' vectorized kernels, so batch and sequential
    error behavior cannot drift apart.

    Parameters
    ----------
    queries:
        Array-like of shape ``(q, d)`` or a single ``(d,)`` vector.
    expected_dim:
        If given, the required number of columns.
    name:
        Name used in error messages.
    dtype:
        Target floating dtype.
    check_finite:
        Skip the O(q*d) finiteness scan when False — for dispatch paths
        whose downstream per-query validation re-checks every row anyway.

    Returns
    -------
    numpy.ndarray
        A C-contiguous 2-D float array.

    Raises
    ------
    ValueError
        If the input is not promotable to 2-D, has the wrong dimension, or
        contains non-finite entries.
    """
    matrix = np.ascontiguousarray(
        np.atleast_2d(np.asarray(queries, dtype=dtype))
    )
    if matrix.ndim != 2:
        raise ValueError(
            f"{name} must be a vector or a 2-D matrix, got shape {matrix.shape}"
        )
    if expected_dim is not None and matrix.shape[1] != expected_dim:
        raise ValueError(
            f"{name} must have dimension {expected_dim}, got {matrix.shape[1]}"
        )
    if check_finite and not np.isfinite(matrix).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return matrix


def check_positive_int(value: int, *, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer of at least ``minimum``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value)!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_fraction(value: float, *, name: str, allow_none: bool = True):
    """Validate a fraction in ``(0, 1]`` (optionally allowing ``None``)."""
    if value is None:
        if allow_none:
            return None
        raise ValueError(f"{name} must not be None")
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value
